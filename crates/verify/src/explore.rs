//! The interleaving explorer: drives many [`Execution`]s of one model
//! closure under different schedules.
//!
//! Two modes:
//!
//! * **DFS with a preemption bound** — systematically enumerates every
//!   schedule reachable with at most `bound` preemptions (a switch away
//!   from a thread that could have kept running). Voluntary switches
//!   (yield, park, finish) are free. Most real synchronization bugs
//!   need very few preemptions, so bound 2–3 covers the interesting
//!   space at a tiny fraction of the full factorial cost.
//! * **PCT-style random** — a seeded RNG picks uniformly among enabled
//!   threads for a fixed number of iterations; useful when the DFS
//!   space is too large.
//!
//! Either way, a failing execution is reported as a [`Violation`]
//! carrying the full replay: the exact choice sequence plus a rendered
//! step-by-step trace. Feeding the choice sequence back through
//! [`Checker::replay`] reproduces the failure deterministically.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, Once};

use crate::exec::{ExecCfg, ExecOutcome, Execution, ViolationKind};
use crate::mutate::{self, Mutation};
use crate::rt;

/// All checker runs in the process are serialized by this lock: the
/// mutation plan is process-global, and running two explorations at
/// once would let `cargo test`'s parallel test threads observe each
/// other's seeded bugs.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

static PANIC_HOOK: Once = Once::new();

fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Model threads unwind constantly (aborted executions) and
            // their real panics are captured as violations; keep the
            // default hook's noise for everything else.
            if info.payload().is::<crate::exec::Abort>() || rt::in_model_thread() {
                return;
            }
            prev(info);
        }));
    });
}

/// A property failure found by the checker, with everything needed to
/// reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which property failed.
    pub kind: ViolationKind,
    /// One-line description of the failure.
    pub message: String,
    /// The exact choice sequence; feed to [`Checker::replay`].
    pub schedule: Vec<usize>,
    /// The rendered step-by-step replay trace.
    pub replay: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.replay)
    }
}

impl std::error::Error for Violation {}

/// Exploration statistics for a clean (violation-free) run.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Number of complete executions explored.
    pub executions: usize,
    /// True when the iteration cap stopped exploration before the
    /// bounded space was exhausted.
    pub capped: bool,
}

enum Mode {
    Dfs,
    Random { iterations: usize, seed: u64 },
    Replay(Vec<usize>),
}

/// Configuration + entry point for checking one model.
pub struct Checker {
    name: String,
    bound: usize,
    max_iterations: usize,
    max_steps: usize,
    mode: Mode,
    mutation: Option<Mutation>,
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

impl Checker {
    /// A DFS checker with the defaults used across the model suites:
    /// preemption bound 3, 200k-execution cap, 20k-step livelock guard.
    pub fn new(name: &str) -> Self {
        Checker {
            name: name.to_string(),
            bound: 3,
            max_iterations: 200_000,
            max_steps: 20_000,
            mode: Mode::Dfs,
            mutation: None,
        }
    }

    /// Like [`Checker::new`], honoring the `RIPS_VERIFY_BOUND`,
    /// `RIPS_VERIFY_MAX_ITERS` and (for random mode)
    /// `RIPS_VERIFY_SEED`/`RIPS_VERIFY_RANDOM_ITERS` environment knobs
    /// so CI can trade coverage for wall clock without recompiling.
    pub fn from_env(name: &str) -> Self {
        let mut c = Checker::new(name);
        if let Some(b) = env_usize("RIPS_VERIFY_BOUND") {
            c.bound = b;
        }
        if let Some(m) = env_usize("RIPS_VERIFY_MAX_ITERS") {
            c.max_iterations = m;
        }
        if std::env::var("RIPS_VERIFY_MODE").as_deref() == Ok("random") {
            c = c.random(
                env_usize("RIPS_VERIFY_RANDOM_ITERS").unwrap_or(2_000),
                env_usize("RIPS_VERIFY_SEED").unwrap_or(0x5EED) as u64,
            );
        }
        c
    }

    /// Set the preemption bound for DFS mode.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.bound = bound;
        self
    }

    /// Cap the number of executions explored.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Set the per-execution step budget (the livelock guard).
    pub fn max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Switch to seeded-random (PCT-style) exploration.
    pub fn random(mut self, iterations: usize, seed: u64) -> Self {
        self.mode = Mode::Random { iterations, seed };
        self
    }

    /// Install a single seeded bug for this run (the mutation sweep).
    pub fn mutation(mut self, m: Mutation) -> Self {
        self.mutation = Some(m);
        self
    }

    /// Re-run one exact schedule from a previous [`Violation`].
    pub fn replay(mut self, schedule: Vec<usize>) -> Self {
        self.mode = Mode::Replay(schedule);
        self
    }

    /// Explore the model. `Ok` carries exploration stats; `Err` carries
    /// the first violation found, with its deterministic replay.
    pub fn check<F>(self, f: F) -> Result<Stats, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let _guard = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        struct ClearMutation;
        impl Drop for ClearMutation {
            fn drop(&mut self) {
                mutate::set(None);
            }
        }
        let _clear = ClearMutation;
        mutate::set(self.mutation);
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        match &self.mode {
            Mode::Dfs => self.run_dfs(&f),
            Mode::Random { iterations, seed } => self.run_random(&f, *iterations, *seed),
            Mode::Replay(schedule) => {
                let prefix = schedule.clone();
                let outcome = self.run_one(prefix, None, &f);
                match outcome.violation.clone() {
                    Some(v) => Err(self.render(v, &outcome)),
                    None => Ok(Stats {
                        executions: 1,
                        capped: false,
                    }),
                }
            }
        }
    }

    fn run_one(
        &self,
        prefix: Vec<usize>,
        rng_seed: Option<u64>,
        f: &Arc<dyn Fn() + Send + Sync>,
    ) -> ExecOutcome {
        let exec = Execution::new(ExecCfg {
            prefix,
            max_steps: self.max_steps,
            rng_seed,
        });
        let tid0 = exec.register_main();
        let f2 = Arc::clone(f);
        let e2 = Arc::clone(&exec);
        let h = std::thread::Builder::new()
            .name("model-main".to_string())
            .spawn(move || {
                rt::set_exec(Arc::clone(&e2), tid0);
                let out = catch_unwind(AssertUnwindSafe(|| (f2)()));
                match out {
                    Ok(()) => e2.finish(tid0),
                    Err(p) => {
                        if p.is::<crate::exec::Abort>() {
                            e2.finish(tid0);
                        } else {
                            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                                (*s).to_string()
                            } else if let Some(s) = p.downcast_ref::<String>() {
                                s.clone()
                            } else {
                                "non-string panic payload".to_string()
                            };
                            e2.fail_assert(tid0, msg);
                        }
                    }
                }
                rt::clear_exec();
            })
            .expect("spawn model main thread");
        exec.add_handle(h);
        exec.join_all();
        exec.outcome()
    }

    fn run_dfs(&self, f: &Arc<dyn Fn() + Send + Sync>) -> Result<Stats, Violation> {
        struct Node {
            prev_pos: Option<usize>,
            choice: usize,
            /// Untried alternative indices at this decision.
            remaining: Vec<usize>,
            /// Preemptions spent strictly above this decision.
            preemptions_before: usize,
        }
        let mut stack: Vec<Node> = Vec::new();
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            let outcome = self.run_one(prefix.clone(), None, f);
            executions += 1;
            if let Some(v) = outcome.violation.clone() {
                return Err(self.render(v, &outcome));
            }
            // Grow the stack with the fresh (non-replayed) decisions.
            for d in outcome.decisions.iter().skip(stack.len()) {
                let pb = match stack.last() {
                    Some(n) => {
                        n.preemptions_before + n.prev_pos.is_some_and(|p| p != n.choice) as usize
                    }
                    None => 0,
                };
                stack.push(Node {
                    prev_pos: d.prev_pos,
                    choice: d.chosen,
                    remaining: (0..d.enabled.len())
                        .rev()
                        .filter(|&i| i != d.chosen)
                        .collect(),
                    preemptions_before: pb,
                });
            }
            if executions >= self.max_iterations {
                return Ok(Stats {
                    executions,
                    capped: true,
                });
            }
            // Backtrack to the deepest decision with an affordable
            // untried alternative.
            let next = 'bt: loop {
                let Some(node) = stack.last_mut() else {
                    break 'bt None;
                };
                while let Some(alt) = node.remaining.pop() {
                    let preempts = node.prev_pos.is_some_and(|p| p != alt) as usize;
                    if node.preemptions_before + preempts <= self.bound {
                        node.choice = alt;
                        break 'bt Some(stack.iter().map(|n| n.choice).collect::<Vec<_>>());
                    }
                }
                stack.pop();
            };
            match next {
                Some(p) => prefix = p,
                None => {
                    return Ok(Stats {
                        executions,
                        capped: false,
                    })
                }
            }
        }
    }

    fn run_random(
        &self,
        f: &Arc<dyn Fn() + Send + Sync>,
        iterations: usize,
        seed: u64,
    ) -> Result<Stats, Violation> {
        for i in 0..iterations {
            let s = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let outcome = self.run_one(Vec::new(), Some(s), f);
            if let Some(v) = outcome.violation.clone() {
                return Err(self.render(v, &outcome));
            }
        }
        Ok(Stats {
            executions: iterations,
            capped: false,
        })
    }

    fn render(&self, (kind, message): (ViolationKind, String), outcome: &ExecOutcome) -> Violation {
        let schedule: Vec<usize> = outcome.decisions.iter().map(|d| d.chosen).collect();
        let mut s = String::new();
        let _ = writeln!(s, "=== rips-verify: {kind} ===");
        let _ = writeln!(s, "model: {}", self.name);
        if let Some(m) = self.mutation {
            let _ = writeln!(s, "active mutation: {:?} at site `{}`", m.kind, m.site);
        }
        let _ = writeln!(s, "{message}");
        let _ = writeln!(s, "schedule (decision indices): {schedule:?}");
        let _ = writeln!(s, "replay trace, {} steps:", outcome.trace.len());
        for (i, e) in outcome.trace.iter().enumerate() {
            let name = outcome
                .thread_names
                .get(e.tid)
                .cloned()
                .unwrap_or_else(|| format!("t{}", e.tid));
            match e.label {
                Some(l) => {
                    let _ = writeln!(s, "  step {i:>4} [{name}] {l}: {}", e.op);
                }
                None => {
                    let _ = writeln!(s, "  step {i:>4} [{name}] {}", e.op);
                }
            }
        }
        let v = Violation {
            kind,
            message,
            schedule,
            replay: s,
        };
        self.dump_replay(&v);
        v
    }

    /// When `RIPS_VERIFY_OUT` names a directory, write the rendered
    /// replay there so CI can upload failing schedules as artifacts.
    fn dump_replay(&self, v: &Violation) {
        let Ok(dir) = std::env::var("RIPS_VERIFY_OUT") else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        let slug: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let site = self
            .mutation
            .map(|m| {
                let s: String = m
                    .site
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                    .collect();
                format!(".{s}")
            })
            .unwrap_or_default();
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{slug}{site}.replay.txt"));
        let _ = std::fs::write(path, &v.replay);
    }
}
