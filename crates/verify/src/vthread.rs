//! The cfg-switched thread seam: `current`/`park`/`unpark`/`yield_now`
//! for the live transport's Dekker-style sleep protocol.
//!
//! Normal builds re-export `std::thread`; under `--cfg rips_verify` the
//! same names resolve to the model scheduler's cooperative threads
//! ([`crate::rt::thread`]), where `park` is a blocking scheduling point
//! with the std park-token semantics and `unpark` is a wake-up edge the
//! happens-before tracker knows about.
//!
//! `unpark` is deliberately *not* a scheduling point in the model: the
//! transport calls it while holding a std `Mutex`, and preempting there
//! would deadlock the checker harness rather than model anything real.

#[cfg(not(rips_verify))]
mod imp {
    pub use std::thread::{current, park, park_timeout, yield_now, JoinHandle, Thread};

    /// Spawn a thread (plain `std::thread::spawn` in normal builds).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }

    /// [`spawn`] with a thread name.
    pub fn spawn_named<F, T>(name: &'static str, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .expect("spawn thread")
    }
}

#[cfg(rips_verify)]
mod imp {
    pub use crate::rt::thread::{
        current, park, park_timeout, spawn, spawn_named, yield_now, JoinHandle, Thread,
    };
}

pub use imp::*;
