//! The mutation seam for the ordering sweep.
//!
//! The ported hot paths name every ordering-sensitive program point with
//! a `&'static str` site label (`sync::ord("ring.tail.publish", Release)`,
//! `sync::fence_at("transport.park.sender", SeqCst)`). In normal builds
//! those helpers are identity functions; under the model checker they
//! consult the process-global [`Mutation`] installed by the sweep
//! harness, so a single test can weaken one ordering, delete one fence,
//! or split one RMW — and prove the checker catches the seeded bug.
//!
//! Exactly one mutation is active at a time; [`crate::Checker`] installs
//! it under the global model lock so concurrently running `cargo test`
//! threads cannot observe each other's mutations.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// What to do to the single mutated site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Replace the ordering passed to `sync::ord(site, ..)` with `Relaxed`.
    WeakenToRelaxed,
    /// Turn the `sync::fence_at(site, ..)` at this site into a no-op.
    DeleteFence,
    /// Split the atomic RMW at this site (e.g. `swap`) into a separate
    /// load and store with a scheduling point in between — the classic
    /// lost-update bug.
    SplitRmw,
}

/// A single seeded bug: one site, one transformation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mutation {
    /// The site label as written at the program point.
    pub site: &'static str,
    /// The transformation to apply there.
    pub kind: MutationKind,
}

static PLAN: Mutex<Option<Mutation>> = Mutex::new(None);

/// Install (or clear) the active mutation. Called by the checker only,
/// under the global model lock.
pub(crate) fn set(m: Option<Mutation>) {
    *PLAN.lock().unwrap() = m;
}

/// The currently active mutation, if any.
pub fn current() -> Option<Mutation> {
    *PLAN.lock().unwrap()
}

/// Instrumented `ord`: the ordering actually used at `site`, after
/// applying the active mutation.
pub fn apply_ord(site: &'static str, ord: Ordering) -> Ordering {
    match current() {
        Some(m) if m.site == site && m.kind == MutationKind::WeakenToRelaxed => Ordering::Relaxed,
        _ => ord,
    }
}

/// Instrumented fence predicate: false when the active mutation deletes
/// the fence at `site`.
pub fn fence_survives(site: &'static str) -> bool {
    !matches!(
        current(),
        Some(m) if m.site == site && m.kind == MutationKind::DeleteFence
    )
}

/// Instrumented RMW predicate: true when the active mutation splits the
/// read-modify-write at `site` into a load + store.
pub fn rmw_is_split(site: &'static str) -> bool {
    matches!(
        current(),
        Some(m) if m.site == site && m.kind == MutationKind::SplitRmw
    )
}
