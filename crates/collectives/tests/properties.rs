//! Property tests: every collective equals its sequential
//! specification on arbitrary meshes and load vectors, with the step
//! counts the paper's cost model assumes.

use proptest::prelude::*;
use rips_collectives::{broadcast, or_barrier, reduce_sum, row_prefix_scan, scan_with_sum};
use rips_topology::{Mesh2D, Topology};

fn mesh_and_values() -> impl Strategy<Value = (Mesh2D, Vec<i64>)> {
    ((1usize..=6), (1usize..=6)).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-50i64..=50, r * c).prop_map(move |v| (Mesh2D::new(r, c), v))
    })
}

proptest! {
    /// Row scan: node (i, j) holds exactly w[i][0..=j], in n2−1 steps.
    #[test]
    fn row_scan_specification((mesh, w) in mesh_and_values()) {
        let (prefixes, out) = row_prefix_scan(&mesh, &w);
        for i in 0..mesh.rows() {
            for j in 0..mesh.cols() {
                let expect: Vec<i64> = (0..=j).map(|k| w[mesh.id(i, k)]).collect();
                prop_assert_eq!(&prefixes[mesh.id(i, j)], &expect);
            }
        }
        prop_assert_eq!(out.comm_steps, mesh.cols() - 1);
    }

    /// Column scan-with-sum: running totals of the row sums, in n1−1
    /// steps.
    #[test]
    fn scan_with_sum_specification((mesh, w) in mesh_and_values()) {
        let s: Vec<i64> = (0..mesh.rows())
            .map(|i| (0..mesh.cols()).map(|j| w[mesh.id(i, j)]).sum())
            .collect();
        let (t, out) = scan_with_sum(&mesh, &s);
        let mut run = 0;
        for i in 0..mesh.rows() {
            prop_assert_eq!(t[i].0, run);
            run += s[i];
            prop_assert_eq!(t[i].1, run);
        }
        prop_assert_eq!(out.comm_steps, mesh.rows() - 1);
    }

    /// Reduce: the root ends with the exact total.
    #[test]
    fn reduce_specification((mesh, w) in mesh_and_values(), root_pick in 0usize..36) {
        let root = root_pick % mesh.len();
        let (total, _) = reduce_sum(&mesh, &w, root);
        prop_assert_eq!(total, w.iter().sum::<i64>());
    }

    /// Broadcast: every node gets the value in ecc(root) steps exactly.
    #[test]
    fn broadcast_specification((mesh, _) in mesh_and_values(), root_pick in 0usize..36) {
        let root = root_pick % mesh.len();
        let (values, out) = broadcast(&mesh, root, 0xBEEFu64);
        prop_assert!(values.iter().all(|&v| v == 0xBEEF));
        let ecc = (0..mesh.len()).map(|b| mesh.distance(root, b)).max().unwrap();
        prop_assert_eq!(out.comm_steps, ecc);
    }

    /// Or-barrier: true iff any flag is set; silent when none are.
    #[test]
    fn or_barrier_specification(
        (mesh, w) in mesh_and_values(),
    ) {
        let flags: Vec<bool> = w.iter().map(|&x| x > 25).collect();
        let (any, out) = or_barrier(&mesh, &flags);
        prop_assert_eq!(any, flags.iter().any(|&f| f));
        if !any {
            prop_assert_eq!(out.comm_steps, 0);
        }
    }
}
