//! Synchronous (BSP-style) collective operations with communication-step
//! accounting.
//!
//! The paper's system phase is *synchronous*: "parallel scheduling is
//! stable because of its synchronous operation" (§1), and MWA's cost is
//! stated in **communication steps** — synchronized rounds in which every
//! node may exchange one message with a direct neighbour (`3(n1+n2)`
//! steps total, §3).
//!
//! This crate provides:
//!
//! * [`BspMachine`] — a deterministic lock-step executor for per-node
//!   state machines restricted to neighbour communication, which counts
//!   rounds and messages;
//! * the collective operations the Mesh Walking Algorithm is built from
//!   (row scan, scan-with-sum, broadcast, row spread, reduce,
//!   or-barrier), each implemented *as* a BSP program and each checked
//!   against its sequential specification;
//! * closed-form step-count formulas used by the RIPS runtime to charge
//!   system-phase time to the simulator clock.

#![forbid(unsafe_code)]

mod bsp;
mod cost;
mod ops;

pub use bsp::{BspMachine, BspOutcome, BspProgram};
pub use cost::{broadcast_steps, dem_steps, mwa_steps, reduce_steps, twa_steps};
pub use ops::{broadcast, or_barrier, reduce_sum, row_prefix_scan, scan_with_sum};
