//! Lock-step executor for neighbour-restricted per-node programs.

use rips_topology::{NodeId, Topology};

/// One node's behaviour under the BSP model.
///
/// Each round, every node receives the messages sent to it in the
/// previous round and may send at most one message per incident link.
/// The machine stops when a round passes with no messages in flight.
pub trait BspProgram {
    /// Message payload.
    type Msg;

    /// Executes one round. `inbox` holds `(sender, payload)` pairs from
    /// the previous round (empty in round 0). Returned messages must
    /// address direct neighbours only — the machine panics otherwise,
    /// because a non-neighbour send would silently break the
    /// step-counting model.
    fn round(
        &mut self,
        me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, Self::Msg)>,
        outbox: &mut Vec<(NodeId, Self::Msg)>,
    );
}

/// Result of running a [`BspMachine`] to quiescence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BspOutcome {
    /// Number of communication steps: rounds in which at least one
    /// message was in flight. This is the quantity the paper's
    /// `3(n1+n2)` bound counts.
    pub comm_steps: usize,
    /// Total messages exchanged.
    pub messages: usize,
}

/// Deterministic synchronous executor over a topology.
pub struct BspMachine<'t, P: BspProgram> {
    topo: &'t dyn Topology,
    nodes: Vec<P>,
}

impl<'t, P: BspProgram> BspMachine<'t, P> {
    /// One program per node, created by `make(node_id)`.
    pub fn new(topo: &'t dyn Topology, make: impl FnMut(NodeId) -> P) -> Self {
        let nodes = (0..topo.len()).map(make).collect();
        BspMachine { topo, nodes }
    }

    /// Runs rounds until no messages were produced in a round, then
    /// returns the programs (carrying their final state) and the
    /// outcome.
    ///
    /// # Panics
    /// Panics if a program addresses a non-neighbour, or if the machine
    /// fails to quiesce within `max_rounds`.
    pub fn run(mut self, max_rounds: usize) -> (Vec<P>, BspOutcome) {
        let n = self.topo.len();
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut comm_steps = 0usize;
        let mut messages = 0usize;
        for round in 0.. {
            assert!(round <= max_rounds, "BSP machine failed to quiesce");
            let mut next: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
            let mut sent = 0usize;
            let mut outbox = Vec::new();
            for (me, prog) in self.nodes.iter_mut().enumerate() {
                let inbox = std::mem::take(&mut inboxes[me]);
                prog.round(me, round, inbox, &mut outbox);
                for (to, msg) in outbox.drain(..) {
                    assert!(
                        self.topo.distance(me, to) == 1,
                        "BSP send {me} -> {to} is not a neighbour link on {}",
                        self.topo.label()
                    );
                    sent += 1;
                    next[to].push((me, msg));
                }
            }
            if sent == 0 && round > 0 {
                break;
            }
            if sent > 0 {
                comm_steps += 1;
                messages += sent;
            } else if round == 0 {
                // A program may do local-only work in round 0 and stop.
                break;
            }
            inboxes = next;
        }
        (
            self.nodes,
            BspOutcome {
                comm_steps,
                messages,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_topology::Ring;

    /// Token passing around a ring: node 0 emits a token that each node
    /// forwards once; quiesces after n-1 steps.
    struct Forward {
        seen: bool,
    }

    impl BspProgram for Forward {
        type Msg = u32;

        fn round(
            &mut self,
            me: NodeId,
            round: usize,
            inbox: Vec<(NodeId, u32)>,
            outbox: &mut Vec<(NodeId, u32)>,
        ) {
            if me == 0 && round == 0 {
                self.seen = true;
                outbox.push((1, 1));
            }
            for (_, tok) in inbox {
                if !self.seen {
                    self.seen = true;
                    if me + 1 < 8 {
                        outbox.push((me + 1, tok + 1));
                    }
                }
            }
        }
    }

    #[test]
    fn ring_forwarding_step_count() {
        let topo = Ring::new(8);
        let machine = BspMachine::new(&topo, |_| Forward { seen: false });
        let (nodes, out) = machine.run(100);
        assert!(nodes.iter().all(|n| n.seen));
        assert_eq!(out.comm_steps, 7);
        assert_eq!(out.messages, 7);
    }

    struct BadSender;

    impl BspProgram for BadSender {
        type Msg = ();

        fn round(
            &mut self,
            me: NodeId,
            round: usize,
            _inbox: Vec<(NodeId, ())>,
            outbox: &mut Vec<(NodeId, ())>,
        ) {
            if me == 0 && round == 0 {
                outbox.push((4, ())); // distance 4 on a ring of 8
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a neighbour")]
    fn non_neighbour_send_rejected() {
        let topo = Ring::new(8);
        BspMachine::new(&topo, |_| BadSender).run(10);
    }

    struct Chatterbox;

    impl BspProgram for Chatterbox {
        type Msg = ();

        fn round(
            &mut self,
            me: NodeId,
            _round: usize,
            _inbox: Vec<(NodeId, ())>,
            outbox: &mut Vec<(NodeId, ())>,
        ) {
            if me == 0 {
                outbox.push((1, ()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed to quiesce")]
    fn livelock_detected() {
        let topo = Ring::new(4);
        BspMachine::new(&topo, |_| Chatterbox).run(16);
    }

    struct Silent;

    impl BspProgram for Silent {
        type Msg = ();

        fn round(
            &mut self,
            _me: NodeId,
            _round: usize,
            _inbox: Vec<(NodeId, ())>,
            _outbox: &mut Vec<(NodeId, ())>,
        ) {
        }
    }

    #[test]
    fn silent_machine_quiesces_immediately() {
        let topo = Ring::new(4);
        let (_, out) = BspMachine::new(&topo, |_| Silent).run(1);
        assert_eq!(out.comm_steps, 0);
        assert_eq!(out.messages, 0);
    }
}
