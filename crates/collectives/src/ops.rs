//! The collective operations the paper's system phase is built from,
//! each realised as a [`BspProgram`] so its communication-step cost is
//! *measured*, not asserted.

use rips_topology::{Mesh2D, NodeId, Topology};

use crate::bsp::{BspMachine, BspOutcome, BspProgram};

// ---------------------------------------------------------------------
// Row prefix scan (MWA step 1)
// ---------------------------------------------------------------------

struct RowScanProg {
    w: i64,
    cols: usize,
    prefix: Vec<i64>,
}

impl BspProgram for RowScanProg {
    type Msg = Vec<i64>;

    fn round(
        &mut self,
        me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, Vec<i64>)>,
        outbox: &mut Vec<(NodeId, Vec<i64>)>,
    ) {
        let col = me % self.cols;
        if round == 0 && col == 0 {
            self.prefix = vec![self.w];
            if self.cols > 1 {
                outbox.push((me + 1, self.prefix.clone()));
            }
        }
        for (_, mut v) in inbox {
            v.push(self.w);
            self.prefix = v;
            if col + 1 < self.cols {
                outbox.push((me + 1, self.prefix.clone()));
            }
        }
    }
}

/// MWA step 1: scan the partial load vector `w` along each mesh row, so
/// node `(i, j)` ends up holding `w_{i,0..=j}`.
///
/// Returns the per-node prefix vectors (indexed by node id) and the
/// measured outcome (`n2 - 1` communication steps).
pub fn row_prefix_scan(mesh: &Mesh2D, w: &[i64]) -> (Vec<Vec<i64>>, BspOutcome) {
    assert_eq!(w.len(), mesh.len(), "one weight per node required");
    let cols = mesh.cols();
    let machine = BspMachine::new(mesh, |id| RowScanProg {
        w: w[id],
        cols,
        prefix: Vec::new(),
    });
    let (nodes, out) = machine.run(mesh.len() + 2);
    (nodes.into_iter().map(|p| p.prefix).collect(), out)
}

// ---------------------------------------------------------------------
// Scan-with-sum down the last column (MWA step 2)
// ---------------------------------------------------------------------

struct ColScanProg {
    s: i64,
    rows: usize,
    cols: usize,
    /// `(t_{i-1}, t_i)`: the running total before and after this row.
    t: Option<(i64, i64)>,
}

impl BspProgram for ColScanProg {
    type Msg = i64;

    fn round(
        &mut self,
        me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, i64)>,
        outbox: &mut Vec<(NodeId, i64)>,
    ) {
        let (row, col) = (me / self.cols, me % self.cols);
        if col + 1 != self.cols {
            return; // only the last column participates
        }
        if round == 0 && row == 0 {
            self.t = Some((0, self.s));
            if self.rows > 1 {
                outbox.push((me + self.cols, self.s));
            }
        }
        for (_, prev) in inbox {
            self.t = Some((prev, prev + self.s));
            if row + 1 < self.rows {
                outbox.push((me + self.cols, prev + self.s));
            }
        }
    }
}

/// MWA step 2: nodes `(i, n2-1)` hold row sums `s_i`; a scan-with-sum
/// down the last column yields `t_i = Σ_{k≤i} s_k` (and `t_{i-1}`).
///
/// Returns per-row `(t_{i-1}, t_i)` pairs and the measured outcome
/// (`n1 - 1` communication steps).
pub fn scan_with_sum(mesh: &Mesh2D, s: &[i64]) -> (Vec<(i64, i64)>, BspOutcome) {
    assert_eq!(s.len(), mesh.rows(), "one partial sum per row required");
    let (rows, cols) = (mesh.rows(), mesh.cols());
    let machine = BspMachine::new(mesh, |id| ColScanProg {
        s: if id % cols == cols - 1 {
            s[id / cols]
        } else {
            0
        },
        rows,
        cols,
        t: None,
    });
    let (nodes, out) = machine.run(mesh.len() + 2);
    let per_row = (0..rows)
        .map(|i| {
            nodes[i * cols + cols - 1]
                .t
                .expect("column scan must reach every row")
        })
        .collect();
    (per_row, out)
}

// ---------------------------------------------------------------------
// Broadcast (flood)
// ---------------------------------------------------------------------

/// Blind flood: forward to every neighbour except the sender on first
/// receipt. Used by the or-barrier, where the initiator is unknown in
/// advance; informs everyone within `ecc(initiator)` steps but may spend
/// one extra tail round on duplicate suppression.
struct FloodProg<V: Clone> {
    value: Option<V>,
    neighbors: Vec<NodeId>,
}

impl<V: Clone> BspProgram for FloodProg<V> {
    type Msg = V;

    fn round(
        &mut self,
        _me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, V)>,
        outbox: &mut Vec<(NodeId, V)>,
    ) {
        if round == 0 {
            if let Some(v) = &self.value {
                for &nb in &self.neighbors {
                    outbox.push((nb, v.clone()));
                }
            }
            return;
        }
        if self.value.is_some() {
            return; // already informed; drop duplicates
        }
        if let Some((from, v)) = inbox.into_iter().next() {
            self.value = Some(v.clone());
            for &nb in &self.neighbors {
                if nb != from {
                    outbox.push((nb, v.clone()));
                }
            }
        }
    }
}

/// Directed flood used for rooted broadcast: since SPMD nodes know the
/// topology and the root, each node forwards only to neighbours strictly
/// farther from the root, finishing in exactly `ecc(root)` steps with
/// one message per BFS-tree-ish edge.
struct RootedFloodProg<V: Clone> {
    value: Option<V>,
    downhill: Vec<NodeId>,
}

impl<V: Clone> BspProgram for RootedFloodProg<V> {
    type Msg = V;

    fn round(
        &mut self,
        _me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, V)>,
        outbox: &mut Vec<(NodeId, V)>,
    ) {
        if round == 0 {
            if let Some(v) = &self.value {
                for &nb in &self.downhill {
                    outbox.push((nb, v.clone()));
                }
            }
            return;
        }
        if self.value.is_some() {
            return;
        }
        if let Some((_, v)) = inbox.into_iter().next() {
            self.value = Some(v.clone());
            for &nb in &self.downhill {
                outbox.push((nb, v.clone()));
            }
        }
    }
}

/// Broadcast `value` from `root` to every node. Returns the received
/// value at each node and the measured outcome (exactly the
/// eccentricity of `root` in communication steps).
pub fn broadcast<V: Clone>(topo: &dyn Topology, root: NodeId, value: V) -> (Vec<V>, BspOutcome) {
    let machine = BspMachine::new(topo, |id| RootedFloodProg {
        value: (id == root).then(|| value.clone()),
        downhill: topo
            .neighbors(id)
            .into_iter()
            .filter(|&nb| crate::ops::hopdist(topo, root, nb) > crate::ops::hopdist(topo, root, id))
            .collect(),
    });
    let (nodes, out) = machine.run(topo.len() + 2);
    (
        nodes
            .into_iter()
            .map(|p| p.value.expect("flood must reach every node"))
            .collect(),
        out,
    )
}

// ---------------------------------------------------------------------
// Reduce (convergecast on a BFS tree)
// ---------------------------------------------------------------------

struct ReduceProg {
    acc: i64,
    parent: Option<NodeId>,
    pending_children: usize,
    sent: bool,
}

impl BspProgram for ReduceProg {
    type Msg = i64;

    fn round(
        &mut self,
        _me: NodeId,
        _round: usize,
        inbox: Vec<(NodeId, i64)>,
        outbox: &mut Vec<(NodeId, i64)>,
    ) {
        for (_, v) in inbox {
            self.acc += v;
            self.pending_children -= 1;
        }
        if !self.sent && self.pending_children == 0 {
            if let Some(p) = self.parent {
                outbox.push((p, self.acc));
                self.sent = true;
            }
        }
    }
}

/// Sum-reduce `values` to `root` along a BFS spanning tree. Returns the
/// total (as held by the root) and the measured outcome.
pub fn reduce_sum(topo: &dyn Topology, values: &[i64], root: NodeId) -> (i64, BspOutcome) {
    assert_eq!(values.len(), topo.len());
    let (parent, child_count) = bfs_tree(topo, root);
    let machine = BspMachine::new(topo, |id| ReduceProg {
        acc: values[id],
        parent: parent[id],
        pending_children: child_count[id],
        sent: false,
    });
    let (nodes, out) = machine.run(topo.len() + 2);
    (nodes[root].acc, out)
}

/// Shortest-path hop distance (delegates to the topology's metric).
fn hopdist(topo: &dyn Topology, a: NodeId, b: NodeId) -> usize {
    topo.distance(a, b)
}

/// BFS spanning tree: per-node parent (None at root) and child count.
fn bfs_tree(topo: &dyn Topology, root: NodeId) -> (Vec<Option<NodeId>>, Vec<usize>) {
    use std::collections::VecDeque;
    let n = topo.len();
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    let mut child_count = vec![0usize; n];
    seen[root] = true;
    let mut q = VecDeque::from([root]);
    while let Some(u) = q.pop_front() {
        for v in topo.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                child_count[u] += 1;
                q.push_back(v);
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "topology must be connected");
    (parent, child_count)
}

// ---------------------------------------------------------------------
// Or-barrier ("eureka", Cray T3D style)
// ---------------------------------------------------------------------

/// Or-barrier: nodes whose `flags` entry is set flood a eureka token;
/// returns whether any flag was set and the measured outcome (0 steps
/// when no flag is set; otherwise at most the topology diameter).
pub fn or_barrier(topo: &dyn Topology, flags: &[bool]) -> (bool, BspOutcome) {
    assert_eq!(flags.len(), topo.len());
    let machine = BspMachine::new(topo, |id| FloodProg {
        value: flags[id].then_some(()),
        neighbors: topo.neighbors(id),
    });
    let any = flags.iter().any(|&f| f);
    let (nodes, out) = machine.run(topo.len() + 2);
    if any {
        assert!(
            nodes.iter().all(|p| p.value.is_some()),
            "eureka must reach every node"
        );
    }
    (any, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_topology::{bfs_distance, BinaryTree, Hypercube};

    fn eccentricity(topo: &dyn Topology, root: NodeId) -> usize {
        (0..topo.len())
            .map(|b| bfs_distance(topo, root, b))
            .max()
            .unwrap()
    }

    #[test]
    fn row_scan_matches_sequential_prefixes() {
        let mesh = Mesh2D::new(3, 4);
        let w: Vec<i64> = (0..12).map(|x| (x * x % 7) as i64).collect();
        let (prefixes, out) = row_prefix_scan(&mesh, &w);
        for i in 0..3 {
            for j in 0..4 {
                let id = mesh.id(i, j);
                let expect: Vec<i64> = (0..=j).map(|k| w[mesh.id(i, k)]).collect();
                assert_eq!(prefixes[id], expect, "node ({i},{j})");
            }
        }
        assert_eq!(out.comm_steps, 3); // n2 - 1
    }

    #[test]
    fn row_scan_single_column() {
        let mesh = Mesh2D::new(4, 1);
        let w = vec![5, 6, 7, 8];
        let (prefixes, out) = row_prefix_scan(&mesh, &w);
        assert_eq!(prefixes, vec![vec![5], vec![6], vec![7], vec![8]]);
        assert_eq!(out.comm_steps, 0);
    }

    #[test]
    fn column_scan_running_totals() {
        let mesh = Mesh2D::new(4, 3);
        let s = vec![10, 20, 30, 40];
        let (t, out) = scan_with_sum(&mesh, &s);
        assert_eq!(t, vec![(0, 10), (10, 30), (30, 60), (60, 100)]);
        assert_eq!(out.comm_steps, 3); // n1 - 1
    }

    #[test]
    fn broadcast_reaches_all_in_eccentricity_steps() {
        for topo in [
            Box::new(Mesh2D::new(4, 5)) as Box<dyn Topology>,
            Box::new(BinaryTree::new(13)),
            Box::new(Hypercube::new(4)),
        ] {
            let (values, out) = broadcast(topo.as_ref(), 0, 0xC0FFEEu64);
            assert!(values.iter().all(|&v| v == 0xC0FFEE));
            assert_eq!(
                out.comm_steps,
                eccentricity(topo.as_ref(), 0),
                "{}",
                topo.label()
            );
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        let topo = Mesh2D::new(3, 3);
        let values: Vec<i64> = (1..=9).collect();
        let (total, out) = reduce_sum(&topo, &values, 4);
        assert_eq!(total, 45);
        // Convergecast from the centre of a 3x3 mesh: 2 steps.
        assert_eq!(out.comm_steps, 2);
    }

    #[test]
    fn reduce_on_single_node() {
        let topo = Mesh2D::new(1, 1);
        let (total, out) = reduce_sum(&topo, &[17], 0);
        assert_eq!(total, 17);
        assert_eq!(out.comm_steps, 0);
    }

    #[test]
    fn or_barrier_silent_when_unset() {
        let topo = Mesh2D::new(4, 4);
        let (any, out) = or_barrier(&topo, &[false; 16]);
        assert!(!any);
        assert_eq!(out.comm_steps, 0);
    }

    #[test]
    fn or_barrier_floods_from_initiator() {
        let topo = Mesh2D::new(4, 4);
        let mut flags = [false; 16];
        flags[5] = true;
        let (any, out) = or_barrier(&topo, &flags);
        assert!(any);
        // Blind flood informs everyone in ecc steps; duplicate
        // suppression may cost one extra tail round.
        let ecc = eccentricity(&topo, 5);
        assert!(out.comm_steps == ecc || out.comm_steps == ecc + 1);
    }

    #[test]
    fn or_barrier_multiple_initiators_is_faster() {
        let topo = Mesh2D::new(1, 9);
        let mut one = [false; 9];
        one[0] = true;
        let mut two = one;
        two[8] = true;
        let (_, slow) = or_barrier(&topo, &one);
        let (_, fast) = or_barrier(&topo, &two);
        assert!(fast.comm_steps < slow.comm_steps);
    }
}
