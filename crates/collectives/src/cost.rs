//! Closed-form communication-step counts used by the runtimes to charge
//! system-phase time without re-simulating each collective.

use rips_topology::Mesh2D;

/// Communication steps of one full Mesh Walking Algorithm invocation on
/// an `n1 × n2` mesh: `3(n1 + n2)` (paper §3: step 1 ≈ n2, step 2 ≈ n1,
/// broadcast/spread ≈ n1 + n2, steps 4–5 ≤ n1 + n2).
pub fn mwa_steps(mesh: &Mesh2D) -> usize {
    3 * (mesh.rows() + mesh.cols())
}

/// Communication steps of the dimension-exchange method on a
/// `d`-dimensional hypercube: one exchange per dimension.
pub fn dem_steps(dim: usize) -> usize {
    dim
}

/// Communication steps of the tree walking algorithm on an `n`-node
/// tree: an up sweep plus a down sweep, `O(log n)` on a balanced tree —
/// `2 · height` exactly.
pub fn twa_steps(height: usize) -> usize {
    2 * height
}

/// Steps for a flood broadcast from the worst-placed root: the topology
/// diameter.
pub fn broadcast_steps(diameter: usize) -> usize {
    diameter
}

/// Steps for a convergecast reduce to the worst-placed root: the
/// topology diameter.
pub fn reduce_steps(diameter: usize) -> usize {
    diameter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_mwa_steps() {
        // The paper's Table I machine: 32 processors as an 8x4 mesh
        // gives 3 * (8 + 4) = 36 steps per system phase.
        assert_eq!(mwa_steps(&Mesh2D::new(8, 4)), 36);
    }

    #[test]
    fn dem_is_logarithmic() {
        assert_eq!(dem_steps(5), 5); // 32 nodes
        assert_eq!(dem_steps(7), 7); // 128 nodes
    }

    #[test]
    fn twa_is_two_sweeps() {
        assert_eq!(twa_steps(5), 10);
    }
}
