//! Registry-generic serve properties: every roster scheduler, short
//! deterministic desim serve runs must (a) pass the [`ServeAuditor`]
//! (per-job task conservation, no cross-tenant leakage, clean job
//! state machines), (b) shed only when the admission bound actually
//! binds, and (c) produce bit-identical reports across two same-seed
//! runs.

use rips_audit::ServeAuditor;
use rips_bench::registry;
use rips_serve::{
    run_serve, AdmissionConfig, ArrivalProcess, Catalog, DesimBackend, ServeConfig, TrafficConfig,
};
use rips_trace::with_sink;

const NODES: usize = 4;

fn cfg_for(scheduler: &str, mean_interarrival_us: u64, admission: AdmissionConfig) -> ServeConfig {
    ServeConfig {
        scheduler: scheduler.to_string(),
        traffic: TrafficConfig {
            tenants: 3,
            jobs_per_tenant: 5,
            mean_interarrival_us,
            process: ArrivalProcess::Poisson,
            seed: 23,
        },
        admission,
        quantum: 64,
        service_seed: 23,
    }
}

/// Loose bounds: nothing sheds, everything completes, the serve audit
/// is clean, and two same-seed runs are bit-identical — for every
/// scheduler in the roster.
#[test]
fn every_roster_scheduler_serves_audited_and_deterministic() {
    let cat = Catalog::tiny();
    for name in registry().names() {
        let cfg = cfg_for(name, 50_000, AdmissionConfig::default());

        let (auditor, rep) = with_sink(ServeAuditor::new(NODES), || {
            run_serve(&cfg, &cat, &mut DesimBackend::new(NODES))
        });
        let audit = auditor.finish();
        assert!(
            audit.is_ok(),
            "{name}: serve audit failed:\n{}",
            audit.render_human()
        );
        assert_eq!(audit.jobs_submitted, 15, "{name}");
        assert_eq!(audit.jobs_completed, 15, "{name}");
        assert_eq!(audit.jobs_shed, 0, "{name}: loose bounds must not shed");
        assert!(
            audit.jobs_with_inner_trace > 0,
            "{name}: desim runs must carry inner traces"
        );

        assert_eq!(rep.shed, 0, "{name}");
        assert_eq!(rep.completed, rep.submitted, "{name}");
        let per_job_tasks: u64 = rep.executed_tasks;
        assert!(per_job_tasks > 0, "{name}: jobs must execute tasks");

        // Bit-identical repeat.
        let rep2 = run_serve(&cfg, &cat, &mut DesimBackend::new(NODES));
        assert_eq!(rep, rep2, "{name}: same-seed serve runs must match");
    }
}

/// Tight bounds under slammed arrivals: sheds happen, but only
/// because a bound binds — the pending-queue and per-tenant peaks
/// never exceed their configured limits, and shed + completed still
/// accounts for every submission.
#[test]
fn every_roster_scheduler_sheds_only_above_the_admission_bound() {
    let cat = Catalog::tiny();
    let tight = AdmissionConfig {
        max_pending: 3,
        tenant_quota: 2,
    };
    for name in registry().names() {
        let cfg = cfg_for(name, 10, tight);
        let (auditor, rep) = with_sink(ServeAuditor::new(NODES), || {
            run_serve(&cfg, &cat, &mut DesimBackend::new(NODES))
        });
        let audit = auditor.finish();
        assert!(
            audit.is_ok(),
            "{name}: serve audit failed under overload:\n{}",
            audit.render_human()
        );
        assert!(rep.shed > 0, "{name}: slammed queue must shed");
        assert!(
            rep.peak_pending <= tight.max_pending as u64,
            "{name}: pending queue exceeded the admission bound"
        );
        for t in &rep.tenants {
            assert!(
                t.peak_pending <= tight.tenant_quota as u64,
                "{name}: tenant {} exceeded its quota",
                t.tenant
            );
        }
        assert_eq!(rep.completed + rep.shed, rep.submitted, "{name}");
        assert_eq!(audit.jobs_shed, rep.shed, "{name}: audit and report agree");
    }
}
