//! **rips-serve** — an open-loop multi-tenant task service over both
//! backends (DESIGN §12).
//!
//! The paper proves RIPS wins on fixed batch workloads; the ROADMAP's
//! north star is a *service* under sustained traffic. This crate
//! turns every roster scheduler into a competitor under load:
//!
//! * [`traffic`] — N tenants submit streams of jobs (queens/puzzle/MD
//!   forests of mixed size, see [`catalog`]) with Poisson or bursty
//!   interarrival gaps, drawn open-loop from a seeded RNG.
//! * [`admission`] — a bounded pending queue with per-tenant quotas;
//!   overload sheds jobs instead of growing without bound.
//! * [`drr`] — deficit round robin shares fleet task-bandwidth fairly
//!   across tenants.
//! * [`backend`] — the fleet itself: the deterministic simulator
//!   (virtual makespans, golden-testable) or the live backend (real
//!   threads, real grains, measured wall clock), one job at a time.
//! * [`report`] / [`sweep`] — per-tenant and aggregate p50/p95/p99
//!   latency, sustained jobs/s, shed rate; offered-load sweeps that
//!   locate each scheduler's saturation knee (`BENCH_SERVE.json`).
//!
//! The serve loop runs on a virtual timeline even when the fleet is
//! live: measured service times are composed onto the timeline (a
//! single-server queue recurrence) rather than slept through. Job
//! lifecycle events ([`TraceEvent::JobSubmit`] … `JobComplete`) flow
//! through the standard trace pipeline, so the
//! [`ServeAuditor`](rips_audit::ServeAuditor) can check per-job
//! conservation and window isolation, and job counters flow through
//! [`metrics_rt`](rips_trace::metrics_rt).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod backend;
pub mod catalog;
pub mod drr;
pub mod report;
pub mod sweep;
pub mod traffic;

use rips_trace::metrics_rt::{Counter, Gauge, Meter};
use rips_trace::{Hist, TraceEvent, Tracer};

pub use admission::{Admission, AdmissionConfig, ShedReason};
pub use backend::{DesimBackend, JobBackend, LiveBackend, ServiceOutcome, ServiceTable};
pub use catalog::{Catalog, JobApp};
pub use drr::{Drr, QueuedJob};
pub use report::{LatencySummary, ServeReport, TenantStats};
pub use sweep::{LoadPoint, SchedulerSeries, SweepConfig};
pub use traffic::{generate, Arrival, ArrivalProcess, TrafficConfig};

/// Everything one serve run needs besides the catalog and the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Roster scheduler serving the fleet.
    pub scheduler: String,
    /// The offered traffic.
    pub traffic: TrafficConfig,
    /// Admission bounds.
    pub admission: AdmissionConfig,
    /// DRR quantum (task-units banked per rotation visit).
    pub quantum: u64,
    /// Base seed for per-job policy seeds (independent of the traffic
    /// seed so arrival and policy randomness can be varied apart).
    pub service_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scheduler: "RIPS".into(),
            traffic: TrafficConfig {
                tenants: 4,
                jobs_per_tenant: 16,
                mean_interarrival_us: 50_000,
                process: ArrivalProcess::Poisson,
                seed: 1,
            },
            admission: AdmissionConfig::default(),
            quantum: 64,
            service_seed: 1,
        }
    }
}

/// Per-job policy seed: decorrelated from neighbouring jobs but fully
/// determined by `(service_seed, job)`.
fn job_seed(service_seed: u64, job: u64) -> u64 {
    let mut z = service_seed ^ job.wrapping_mul(0xd134_2543_de82_ef95);
    z = (z ^ (z >> 32)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^ (z >> 32)
}

/// Mutable serve-loop state shared by arrival handling and the
/// dispatch pump.
struct Loop<'a> {
    cfg: &'a ServeConfig,
    backend: &'a mut dyn JobBackend,
    admission: Admission,
    drr: Drr,
    tracer: Tracer,
    meter: Meter,
    /// When the fleet finishes its current job (µs).
    free_at: u64,
    last_completion: u64,
    executed_tasks: u64,
    completed: Vec<u64>,
    latency: Vec<Hist>,
    aggregate: Hist,
}

impl Loop<'_> {
    fn set_pending_gauge(&self) {
        if let Some(reg) = self.meter.registry() {
            reg.set_gauge(0, Gauge::PendingJobs, self.admission.pending() as u64);
        }
    }

    /// Dispatches jobs while the fleet can start one strictly before
    /// `until` (arrivals at `until` get admitted first, so a job
    /// arriving exactly when the fleet frees still joins the DRR
    /// round it belongs to).
    fn pump(&mut self, until: u64) {
        while let Some(ready) = self.drr.earliest_ready() {
            let start = self.free_at.max(ready);
            if start >= until {
                break;
            }
            let job = self.drr.pick(start).expect("a job is ready by `start`");
            self.admission.release(job.tenant);
            self.set_pending_gauge();
            self.tracer.emit(start, 0, || TraceEvent::JobDispatch {
                tenant: job.tenant,
                job: job.job,
                tasks: job.app.tasks,
            });
            let seed = job_seed(self.cfg.service_seed, job.job);
            let out = self.backend.service(&self.cfg.scheduler, &job.app, seed);
            let done = start + out.service_us;
            self.tracer.emit(done, 0, || TraceEvent::JobComplete {
                tenant: job.tenant,
                job: job.job,
                executed: out.executed,
            });
            self.meter.inc(Counter::JobsCompleted);
            let lat = done - job.arrival;
            self.latency[job.tenant as usize].push(lat);
            self.aggregate.push(lat);
            self.completed[job.tenant as usize] += 1;
            self.executed_tasks += out.executed;
            self.last_completion = done;
            self.free_at = done;
        }
    }
}

/// Runs one open-loop serve experiment: generate the arrival
/// schedule, push it through admission → DRR → the fleet, and report.
///
/// Fully deterministic when `backend` is (desim, or a
/// [`ServiceTable`]): same config, bit-identical report. Install a
/// trace sink (e.g. the [`ServeAuditor`](rips_audit::ServeAuditor))
/// and/or a metrics registry around this call to observe the run.
pub fn run_serve(
    cfg: &ServeConfig,
    catalog: &Catalog,
    backend: &mut dyn JobBackend,
) -> ServeReport {
    let arrivals = traffic::generate(&cfg.traffic, catalog);
    let tenants = cfg.traffic.tenants as usize;
    let mut lp = Loop {
        cfg,
        backend,
        admission: Admission::new(cfg.admission),
        drr: Drr::new(cfg.quantum),
        tracer: Tracer::current(),
        meter: Meter::current(),
        free_at: 0,
        last_completion: 0,
        executed_tasks: 0,
        completed: vec![0; tenants],
        latency: (0..tenants).map(|_| Hist::new()).collect(),
        aggregate: Hist::new(),
    };
    let mut submitted = vec![0u64; tenants];
    let mut shed = vec![0u64; tenants];

    for a in &arrivals {
        lp.pump(a.time);
        submitted[a.tenant as usize] += 1;
        lp.meter.inc(Counter::JobsSubmitted);
        lp.tracer.emit(a.time, 0, || TraceEvent::JobSubmit {
            tenant: a.tenant,
            job: a.job,
        });
        match lp.admission.try_admit(a.tenant) {
            Ok(()) => {
                lp.drr.enqueue(QueuedJob {
                    job: a.job,
                    tenant: a.tenant,
                    arrival: a.time,
                    app: std::sync::Arc::clone(&a.app),
                    cost: a.app.tasks,
                });
                lp.set_pending_gauge();
            }
            Err(_) => {
                shed[a.tenant as usize] += 1;
                lp.meter.inc(Counter::JobsShed);
                lp.tracer.emit(a.time, 0, || TraceEvent::JobShed {
                    tenant: a.tenant,
                    job: a.job,
                });
            }
        }
    }
    lp.pump(u64::MAX);
    assert!(lp.drr.is_empty(), "undispatched jobs after final pump");

    let tenant_stats: Vec<TenantStats> = (0..tenants)
        .map(|t| TenantStats {
            tenant: t as u32,
            submitted: submitted[t],
            shed: shed[t],
            completed: lp.completed[t],
            peak_pending: lp
                .admission
                .peak_tenant
                .get(&(t as u32))
                .copied()
                .unwrap_or(0) as u64,
            latency: LatencySummary::from_hist(&mut lp.latency[t]),
        })
        .collect();
    let total_submitted: u64 = submitted.iter().sum();
    let total_shed: u64 = shed.iter().sum();
    let total_completed: u64 = lp.completed.iter().sum();
    ServeReport {
        scheduler: cfg.scheduler.clone(),
        backend: lp.backend.name().into(),
        process: cfg.traffic.process.label(),
        tenants: tenant_stats,
        submitted: total_submitted,
        shed: total_shed,
        completed: total_completed,
        executed_tasks: lp.executed_tasks,
        latency: LatencySummary::from_hist(&mut lp.aggregate),
        makespan_us: lp.last_completion,
        jobs_per_sec: if lp.last_completion > 0 {
            total_completed as f64 / (lp.last_completion as f64 / 1e6)
        } else {
            0.0
        },
        shed_rate: if total_submitted > 0 {
            total_shed as f64 / total_submitted as f64
        } else {
            0.0
        },
        peak_pending: lp.admission.peak_pending as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            traffic: TrafficConfig {
                tenants: 3,
                jobs_per_tenant: 6,
                mean_interarrival_us: 20_000,
                process: ArrivalProcess::Poisson,
                seed: 11,
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_run_completes_everything_under_loose_bounds() {
        let cat = Catalog::tiny();
        let cfg = quick_cfg();
        let mut backend = DesimBackend::new(4);
        let rep = run_serve(&cfg, &cat, &mut backend);
        assert_eq!(rep.submitted, 18);
        assert_eq!(rep.shed, 0);
        assert_eq!(rep.completed, 18);
        assert!(rep.latency.p50_us > 0);
        assert!(rep.latency.p99_us >= rep.latency.p95_us);
        assert!(rep.jobs_per_sec > 0.0);
    }

    #[test]
    fn serve_run_is_bit_stable_across_repeats() {
        let cat = Catalog::tiny();
        let cfg = quick_cfg();
        let a = run_serve(&cfg, &cat, &mut DesimBackend::new(4));
        let b = run_serve(&cfg, &cat, &mut DesimBackend::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn tight_bounds_shed_and_are_never_exceeded() {
        let cat = Catalog::tiny();
        let mut cfg = quick_cfg();
        cfg.traffic.mean_interarrival_us = 10; // slam the queue
        cfg.admission = AdmissionConfig {
            max_pending: 3,
            tenant_quota: 2,
        };
        let rep = run_serve(&cfg, &cat, &mut DesimBackend::new(4));
        assert!(rep.shed > 0, "overload must shed");
        assert!(rep.peak_pending <= 3);
        for t in &rep.tenants {
            assert!(t.peak_pending <= 2, "tenant {} broke quota", t.tenant);
        }
        assert_eq!(rep.completed + rep.shed, rep.submitted);
    }
}
