//! The fleet seam: one job in, one measured service out.
//!
//! Serving is a queueing layer *above* the backends. The fleet runs
//! one job at a time across all its nodes (jobs are whole task
//! forests — they already parallelize internally), so the serve loop
//! is a single-server queue whose service times come from whichever
//! backend is plugged in:
//!
//! * [`DesimBackend`] — the registry's simulator constructors; the
//!   service time is the run's virtual makespan (`stats.end_time`).
//!   Fully deterministic, so serve runs are golden-testable.
//! * [`LiveBackend`] — real OS threads executing real grains via
//!   [`live_run`]; the service time is the measured wall clock. The
//!   serve timeline stays virtual — measured service times are
//!   *composed* on it rather than slept through, so an hour of
//!   simulated traffic still finishes in the sum of its busy time.
//! * [`ServiceTable`] — memoized outcomes from either backend, for
//!   load sweeps that replay hundreds of jobs per point without
//!   re-running the fleet per job.

use std::collections::BTreeMap;

use rips_bench::live::{live_opts, live_run};
use rips_bench::registry;
use rips_desim::LatencyModel;
use rips_live::GrainMode;
use rips_runtime::{Costs, RunSpec, SchedulerRegistry};

use crate::catalog::JobApp;

/// What serving one job produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// Fleet busy time for the job (µs): virtual makespan on desim,
    /// measured wall clock on live.
    pub service_us: u64,
    /// Tasks the backend executed (must equal the app's task count —
    /// per-job conservation).
    pub executed: u64,
    /// Grain checksum (live only; 0 on desim, which schedules grains
    /// without running them).
    pub checksum: u64,
    /// Solutions found (live only).
    pub solutions: u64,
}

/// A fleet that can serve catalog jobs.
pub trait JobBackend {
    /// Backend label for reports (`"desim"` / `"live"`).
    fn name(&self) -> &'static str;

    /// Fleet width (simulated nodes / live threads) — sizes the
    /// auditors that watch this fleet's runs.
    fn nodes(&self) -> usize;

    /// Runs `app` under `scheduler` with the given policy seed and
    /// returns the measured service.
    ///
    /// # Panics
    /// If the run loses or duplicates tasks, or (live) the grain
    /// totals disagree with the table's static ground truth.
    fn service(&mut self, scheduler: &str, app: &JobApp, seed: u64) -> ServiceOutcome;
}

/// The deterministic simulator fleet.
pub struct DesimBackend {
    reg: SchedulerRegistry,
    /// Simulated mesh size.
    pub nodes: usize,
}

impl DesimBackend {
    /// A fleet of `nodes` simulated processors running the canonical
    /// roster.
    pub fn new(nodes: usize) -> Self {
        DesimBackend {
            reg: registry(),
            nodes,
        }
    }
}

impl JobBackend for DesimBackend {
    fn name(&self) -> &'static str {
        "desim"
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn service(&mut self, scheduler: &str, app: &JobApp, seed: u64) -> ServiceOutcome {
        let spec = RunSpec {
            workload: std::sync::Arc::clone(&app.workload),
            nodes: self.nodes,
            latency: LatencyModel::paragon(),
            costs: Costs::default(),
            seed,
            rid_u: app.rid_u,
        };
        let run = self.reg.run(scheduler, &spec);
        run.outcome
            .verify_complete(&app.workload)
            .unwrap_or_else(|e| panic!("{scheduler} serving {}: {e}", app.name));
        ServiceOutcome {
            service_us: run.outcome.stats.end_time.max(1),
            executed: run.outcome.executed.iter().sum(),
            checksum: 0,
            solutions: 0,
        }
    }
}

/// The live fleet: real threads, real grains, wall-clock service.
pub struct LiveBackend {
    /// OS threads (one per node).
    pub threads: usize,
}

impl LiveBackend {
    /// A fleet of `threads` node threads in compute mode.
    pub fn new(threads: usize) -> Self {
        LiveBackend { threads }
    }
}

impl JobBackend for LiveBackend {
    fn name(&self) -> &'static str {
        "live"
    }

    fn nodes(&self) -> usize {
        self.threads
    }

    fn service(&mut self, scheduler: &str, app: &JobApp, seed: u64) -> ServiceOutcome {
        let opts = live_opts(&app.table, GrainMode::Compute, 1.0);
        let out = live_run(
            scheduler,
            &app.workload,
            self.threads,
            app.rid_u,
            seed,
            opts,
        );
        let truth = app.table.static_totals();
        assert_eq!(
            (out.checksum, out.solutions),
            (truth.checksum, truth.solutions),
            "{scheduler} serving {}: grain totals diverged from ground truth",
            app.name
        );
        ServiceOutcome {
            service_us: out.wall_us.max(1),
            executed: out.executed.iter().sum(),
            checksum: out.checksum,
            solutions: out.solutions,
        }
    }
}

/// Memoized service outcomes, keyed by `(scheduler, app, seed)`.
///
/// Load sweeps replay the same small set of (scheduler, app,
/// seed-variant) cells across hundreds of arrivals; measuring each
/// cell once (audited, see [`sweep`](crate::sweep)) and replaying the
/// outcome keeps a whole sweep inside a CI budget. On desim this is
/// exact — the cell *is* deterministic; on live it substitutes one
/// measured sample per cell.
pub struct ServiceTable {
    label: &'static str,
    cells: BTreeMap<(String, String, u64), ServiceOutcome>,
    /// Fleet width the cells were measured on.
    pub fleet_nodes: usize,
    /// How many distinct policy seeds each (scheduler, app) pair was
    /// measured under; lookups fold the job seed onto a variant.
    pub seed_variants: u64,
}

impl ServiceTable {
    /// An empty table labelled with the backend its cells came from
    /// and the fleet width they were measured on.
    pub fn new(label: &'static str, fleet_nodes: usize, seed_variants: u64) -> Self {
        ServiceTable {
            label,
            cells: BTreeMap::new(),
            fleet_nodes,
            seed_variants: seed_variants.max(1),
        }
    }

    /// The seed variant a job seed folds onto.
    pub fn variant(&self, seed: u64) -> u64 {
        seed % self.seed_variants
    }

    /// Stores one measured cell.
    pub fn insert(&mut self, scheduler: &str, app: &str, variant: u64, out: ServiceOutcome) {
        self.cells
            .insert((scheduler.into(), app.into(), variant), out);
    }
}

impl JobBackend for ServiceTable {
    fn name(&self) -> &'static str {
        self.label
    }

    fn nodes(&self) -> usize {
        self.fleet_nodes
    }

    fn service(&mut self, scheduler: &str, app: &JobApp, seed: u64) -> ServiceOutcome {
        let key = (
            scheduler.to_string(),
            app.name.to_string(),
            self.variant(seed),
        );
        *self
            .cells
            .get(&key)
            .unwrap_or_else(|| panic!("no measured cell for {key:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn desim_service_is_seed_deterministic() {
        let cat = Catalog::tiny();
        let app = &cat.apps()[0];
        let mut b = DesimBackend::new(4);
        let a1 = b.service("RIPS", app, 7);
        let a2 = b.service("RIPS", app, 7);
        assert_eq!(a1, a2);
        assert_eq!(a1.executed, app.tasks);
        assert!(a1.service_us > 0);
    }

    #[test]
    fn service_table_replays_measured_cells() {
        let cat = Catalog::tiny();
        let app = &cat.apps()[0];
        let mut t = ServiceTable::new("desim", 4, 2);
        let out = ServiceOutcome {
            service_us: 123,
            executed: app.tasks,
            checksum: 0,
            solutions: 0,
        };
        t.insert("RIPS", app.name, 1, out);
        assert_eq!(t.service("RIPS", app, 3), out); // 3 % 2 == 1
    }
}
