//! Admission control: a bounded pending queue with per-tenant quotas.
//!
//! Open-loop traffic cannot be back-pressured — jobs keep arriving at
//! the offered rate no matter how slow the fleet is — so past
//! saturation the only alternatives are unbounded queue growth or
//! load-shedding. The controller sheds: a job is rejected (never to
//! dispatch) when the fleet-wide pending bound or its tenant's quota
//! is already full, and admitted otherwise. Both checks are against
//! *admitted-but-not-yet-dispatched* jobs only.

use std::collections::BTreeMap;

/// Bounds for the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Fleet-wide cap on admitted-but-undispatched jobs.
    pub max_pending: usize,
    /// Per-tenant cap on admitted-but-undispatched jobs (isolation:
    /// one flooding tenant cannot occupy the whole pending queue).
    pub tenant_quota: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_pending: 64,
            tenant_quota: 16,
        }
    }
}

/// Why a job was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The fleet-wide pending bound was full.
    QueueFull,
    /// The tenant's own quota was full.
    QuotaExceeded,
}

/// Pending-queue accountant. The fairness layer holds the actual job
/// queues; this tracks only the counts the bounds are defined over.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    pending: usize,
    per_tenant: BTreeMap<u32, usize>,
    /// High-water mark of the fleet-wide pending count.
    pub peak_pending: usize,
    /// High-water mark per tenant.
    pub peak_tenant: BTreeMap<u32, usize>,
}

impl Admission {
    /// A controller with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            pending: 0,
            per_tenant: BTreeMap::new(),
            peak_pending: 0,
            peak_tenant: BTreeMap::new(),
        }
    }

    /// Admits one job for `tenant`, or says why not. Counts are only
    /// mutated on success.
    pub fn try_admit(&mut self, tenant: u32) -> Result<(), ShedReason> {
        if self.pending >= self.cfg.max_pending {
            return Err(ShedReason::QueueFull);
        }
        let t = self.per_tenant.entry(tenant).or_insert(0);
        if *t >= self.cfg.tenant_quota {
            return Err(ShedReason::QuotaExceeded);
        }
        *t += 1;
        self.pending += 1;
        self.peak_pending = self.peak_pending.max(self.pending);
        let peak = self.peak_tenant.entry(tenant).or_insert(0);
        *peak = (*peak).max(*t);
        Ok(())
    }

    /// Releases one admitted job of `tenant` (it was dispatched).
    ///
    /// # Panics
    /// If the tenant has no admitted jobs — a serve-loop bug.
    pub fn release(&mut self, tenant: u32) {
        let t = self.per_tenant.get_mut(&tenant).expect("tenant admitted");
        assert!(*t > 0 && self.pending > 0, "release without admit");
        *t -= 1;
        self.pending -= 1;
    }

    /// Admitted-but-undispatched jobs fleet-wide.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_binds_before_global_bound() {
        let mut a = Admission::new(AdmissionConfig {
            max_pending: 10,
            tenant_quota: 2,
        });
        assert!(a.try_admit(0).is_ok());
        assert!(a.try_admit(0).is_ok());
        assert_eq!(a.try_admit(0), Err(ShedReason::QuotaExceeded));
        // Another tenant still gets in: isolation.
        assert!(a.try_admit(1).is_ok());
        assert_eq!(a.pending(), 3);
    }

    #[test]
    fn global_bound_sheds_everyone() {
        let mut a = Admission::new(AdmissionConfig {
            max_pending: 2,
            tenant_quota: 8,
        });
        assert!(a.try_admit(0).is_ok());
        assert!(a.try_admit(1).is_ok());
        assert_eq!(a.try_admit(2), Err(ShedReason::QueueFull));
        a.release(0);
        assert!(a.try_admit(2).is_ok());
        assert_eq!(a.peak_pending, 2);
    }
}
