//! Offered-load sweeps: find each scheduler's saturation knee.
//!
//! For one (scheduler, backend) pair the sweep first *calibrates*:
//! every catalog app is served once per policy-seed variant under a
//! fresh [`Auditor`], giving audited, Theorem-1-checked service times
//! and the fleet's mean service time `S̄`. The measured cells fill a
//! [`ServiceTable`], and each load level then replays a full serve
//! run against the table — hundreds of arrivals per point at O(1)
//! fleet cost — under the [`ServeAuditor`], with the per-tenant mean
//! interarrival set to `tenants · S̄ / ρ` so a load factor `ρ` of 1.0
//! offers exactly the fleet's capacity.
//!
//! The knee is the first load level where the queue stops being
//! stable in the observable sense: shed rate above 1 %, or aggregate
//! p99 latency beyond 5× the lightest level's p99.

use rips_audit::{Auditor, ServeAuditor};
use rips_trace::with_sink;

use crate::admission::AdmissionConfig;
use crate::backend::{JobBackend, ServiceTable};
use crate::catalog::Catalog;
use crate::report::ServeReport;
use crate::traffic::{ArrivalProcess, TrafficConfig};
use crate::{run_serve, ServeConfig};

/// Sweep shape shared by every series.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Offered load factors relative to calibrated capacity
    /// (ascending; 1.0 = the fleet's mean service rate).
    pub load_factors: Vec<f64>,
    /// Simulated tenants.
    pub tenants: u32,
    /// Jobs per tenant per load level.
    pub jobs_per_tenant: u32,
    /// Interarrival shape.
    pub process: ArrivalProcess,
    /// Admission bounds.
    pub admission: AdmissionConfig,
    /// DRR quantum.
    pub quantum: u64,
    /// Base seed (traffic and policy streams derive from it).
    pub seed: u64,
    /// Distinct policy seeds measured per (scheduler, app) cell.
    pub seed_variants: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            load_factors: vec![0.2, 0.5, 0.8, 1.1, 1.5, 2.0],
            tenants: 4,
            jobs_per_tenant: 25,
            process: ArrivalProcess::Poisson,
            admission: AdmissionConfig::default(),
            quantum: 64,
            seed: 1,
            seed_variants: 2,
        }
    }
}

/// One load level's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load factor (1.0 = calibrated capacity).
    pub load: f64,
    /// Offered arrival rate implied by the factor (jobs/s).
    pub offered_jobs_per_sec: f64,
    /// Whether the [`ServeAuditor`] passed on this run.
    pub serve_audit_ok: bool,
    /// The full serve report for the level.
    pub report: ServeReport,
}

/// One (scheduler, backend) series across the load axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerSeries {
    /// Roster scheduler.
    pub scheduler: String,
    /// Backend label.
    pub backend: String,
    /// Calibrated mean service time over the catalog (µs).
    pub mean_service_us: u64,
    /// Whether every calibration run passed its [`Auditor`] and
    /// conserved its tasks.
    pub audited_ok: bool,
    /// Largest post-schedule spread over all calibration runs
    /// (Theorem 1 bound: 1).
    pub max_spread: i64,
    /// System phases checked during calibration.
    pub phases_checked: usize,
    /// First load factor past the saturation knee, if the sweep
    /// reached it.
    pub knee_load: Option<f64>,
    /// Points in `load_factors` order.
    pub points: Vec<LoadPoint>,
}

/// What [`calibrate`] measured.
pub struct Calibration {
    /// Memoized audited service cells.
    pub table: ServiceTable,
    /// Every calibration run passed its auditor and conserved tasks.
    pub audited_ok: bool,
    /// Largest post-schedule spread over all calibration runs.
    pub max_spread: i64,
    /// System phases checked across all calibration runs.
    pub phases_checked: usize,
    /// Mean service time over the measured cells (µs).
    pub mean_service_us: u64,
}

/// Calibrates `scheduler` on `backend` over the catalog: one audited
/// run per (app, seed variant).
pub fn calibrate(
    scheduler: &str,
    catalog: &Catalog,
    backend: &mut dyn JobBackend,
    seed: u64,
    seed_variants: u64,
) -> Calibration {
    let label = backend.name();
    let mut table = ServiceTable::new(
        if label == "live" { "live" } else { "desim" },
        backend.nodes(),
        seed_variants,
    );
    let (mut ok, mut max_spread, mut phases) = (true, 0i64, 0usize);
    let mut total_us = 0u64;
    let mut cells = 0u64;
    for app in catalog.apps() {
        for v in 0..seed_variants.max(1) {
            let (auditor, out) = with_sink(Auditor::new(backend.nodes()), || {
                backend.service(scheduler, app, seed ^ v)
            });
            let r = auditor.finish();
            ok &= r.is_ok() && out.executed == app.tasks;
            max_spread = max_spread.max(r.max_spread);
            phases += r.phases_checked;
            total_us += out.service_us;
            cells += 1;
            table.insert(scheduler, app.name, v, out);
        }
    }
    Calibration {
        table,
        audited_ok: ok,
        max_spread,
        phases_checked: phases,
        mean_service_us: (total_us / cells.max(1)).max(1),
    }
}

/// Sweeps one (scheduler, backend) pair across `cfg.load_factors`:
/// calibrate, then replay one serve run per level against the
/// measured table under the [`ServeAuditor`].
pub fn sweep_one(
    cfg: &SweepConfig,
    scheduler: &str,
    catalog: &Catalog,
    backend: &mut dyn JobBackend,
) -> SchedulerSeries {
    let backend_label = backend.name().to_string();
    let mut cal = calibrate(scheduler, catalog, backend, cfg.seed, cfg.seed_variants);
    let mut points = Vec::new();
    for (i, &load) in cfg.load_factors.iter().enumerate() {
        // ρ = tenants · (S̄ / interarrival)  ⇒  interarrival = tenants·S̄/ρ.
        let mean_interarrival_us =
            ((cfg.tenants as f64 * cal.mean_service_us as f64 / load) as u64).max(1);
        let serve_cfg = ServeConfig {
            scheduler: scheduler.to_string(),
            traffic: TrafficConfig {
                tenants: cfg.tenants,
                jobs_per_tenant: cfg.jobs_per_tenant,
                mean_interarrival_us,
                process: cfg.process,
                // Decorrelate levels so a level's arrival pattern is
                // not a time-scaled copy of its neighbour's.
                seed: cfg.seed.wrapping_add(1 + i as u64),
            },
            admission: cfg.admission,
            quantum: cfg.quantum,
            service_seed: cfg.seed,
        };
        let nodes = cal.table.fleet_nodes;
        let table = &mut cal.table;
        let (auditor, report) = with_sink(ServeAuditor::new(nodes), || {
            run_serve(&serve_cfg, catalog, table)
        });
        let audit = auditor.finish();
        points.push(LoadPoint {
            load,
            offered_jobs_per_sec: cfg.tenants as f64 * 1e6 / mean_interarrival_us as f64,
            serve_audit_ok: audit.is_ok(),
            report,
        });
    }
    let knee_load = find_knee(&points);
    SchedulerSeries {
        scheduler: scheduler.to_string(),
        backend: backend_label,
        mean_service_us: cal.mean_service_us,
        audited_ok: cal.audited_ok,
        max_spread: cal.max_spread,
        phases_checked: cal.phases_checked,
        knee_load,
        points,
    }
}

/// The first load level where the queue observably saturates: shed
/// rate above 1 %, or aggregate p99 latency beyond 5× the lightest
/// level's p99.
pub fn find_knee(points: &[LoadPoint]) -> Option<f64> {
    let base_p99 = points.first().map(|p| p.report.latency.p99_us.max(1))?;
    points
        .iter()
        .find(|p| p.report.shed_rate > 0.01 || p.report.latency.p99_us > 5 * base_p99)
        .map(|p| p.load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DesimBackend;

    #[test]
    fn sweep_finds_a_knee_on_the_simulator() {
        let cfg = SweepConfig {
            load_factors: vec![0.3, 1.6, 3.0],
            tenants: 3,
            jobs_per_tenant: 10,
            seed_variants: 1,
            ..SweepConfig::default()
        };
        let cat = Catalog::tiny();
        let mut backend = DesimBackend::new(4);
        let s = sweep_one(&cfg, "RIPS", &cat, &mut backend);
        assert!(s.audited_ok, "calibration must audit clean");
        assert!(s.max_spread <= 1, "Theorem 1 must hold per job");
        assert!(s.phases_checked > 0, "RIPS runs system phases");
        assert_eq!(s.points.len(), 3);
        assert!(s.points.iter().all(|p| p.serve_audit_ok));
        // Light load completes everything; heavy load saturates.
        assert_eq!(s.points[0].report.shed, 0);
        assert!(s.knee_load.is_some(), "3× capacity must show a knee");
        // Latency is monotone-ish: the heaviest level is worse than
        // the lightest.
        assert!(
            s.points[2].report.latency.p99_us >= s.points[0].report.latency.p99_us,
            "p99 should not improve under overload"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SweepConfig {
            load_factors: vec![0.5, 1.5],
            tenants: 2,
            jobs_per_tenant: 6,
            seed_variants: 1,
            ..SweepConfig::default()
        };
        let cat = Catalog::tiny();
        let a = sweep_one(&cfg, "RID", &cat, &mut DesimBackend::new(4));
        let b = sweep_one(&cfg, "RID", &cat, &mut DesimBackend::new(4));
        assert_eq!(a.points, b.points);
        assert_eq!(a.mean_service_us, b.mean_service_us);
    }
}
