//! Per-tenant and aggregate serving statistics.

use rips_trace::Hist;

/// Latency percentiles summarized from one [`Hist`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median job latency (µs, submission → completion).
    pub p50_us: u64,
    /// 95th percentile (µs).
    pub p95_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
    /// Worst job (µs).
    pub max_us: u64,
    /// Mean (µs).
    pub mean_us: f64,
}

impl LatencySummary {
    /// Summarizes a histogram of per-job latencies.
    pub fn from_hist(h: &mut Hist) -> LatencySummary {
        LatencySummary {
            p50_us: h.percentile(50),
            p95_us: h.percentile(95),
            p99_us: h.percentile(99),
            max_us: h.max(),
            mean_us: h.mean(),
        }
    }
}

/// One tenant's view of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: u32,
    /// Jobs offered.
    pub submitted: u64,
    /// Jobs admission rejected.
    pub shed: u64,
    /// Jobs served to completion.
    pub completed: u64,
    /// High-water mark of this tenant's admitted-but-undispatched
    /// jobs (never exceeds the tenant quota).
    pub peak_pending: u64,
    /// Latency of this tenant's completed jobs.
    pub latency: LatencySummary,
}

/// The outcome of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Roster scheduler that served the fleet.
    pub scheduler: String,
    /// Backend label (`"desim"` / `"live"`).
    pub backend: String,
    /// Arrival-process label.
    pub process: String,
    /// Per-tenant breakdown, in tenant order.
    pub tenants: Vec<TenantStats>,
    /// Total jobs offered.
    pub submitted: u64,
    /// Total jobs shed.
    pub shed: u64,
    /// Total jobs completed.
    pub completed: u64,
    /// Tasks executed across all completed jobs.
    pub executed_tasks: u64,
    /// Aggregate latency over all completed jobs.
    pub latency: LatencySummary,
    /// Serve-timeline instant of the last completion (µs).
    pub makespan_us: u64,
    /// Sustained completion throughput over the makespan.
    pub jobs_per_sec: f64,
    /// `shed / submitted` (0 when nothing was offered).
    pub shed_rate: f64,
    /// High-water mark of the fleet-wide pending queue (never exceeds
    /// the admission bound).
    pub peak_pending: u64,
}

impl ServeReport {
    /// Multi-line human rendering (the `rips serve` output).
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "serve: {} on {} | {} arrivals | {} jobs offered, {} completed, {} shed ({:.1}%)\n",
            self.scheduler,
            self.backend,
            self.process,
            self.submitted,
            self.completed,
            self.shed,
            self.shed_rate * 100.0,
        ));
        s.push_str(&format!(
            "  throughput {:.2} jobs/s | makespan {:.3} s | peak pending {} | tasks executed {}\n",
            self.jobs_per_sec,
            self.makespan_us as f64 / 1e6,
            self.peak_pending,
            self.executed_tasks,
        ));
        s.push_str(&format!(
            "  latency p50 {} µs | p95 {} µs | p99 {} µs | max {} µs\n",
            self.latency.p50_us, self.latency.p95_us, self.latency.p99_us, self.latency.max_us,
        ));
        s.push_str("  tenant  submitted  shed  completed  peak  p50_us  p95_us  p99_us\n");
        for t in &self.tenants {
            s.push_str(&format!(
                "  {:>6}  {:>9}  {:>4}  {:>9}  {:>4}  {:>6}  {:>6}  {:>6}\n",
                t.tenant,
                t.submitted,
                t.shed,
                t.completed,
                t.peak_pending,
                t.latency.p50_us,
                t.latency.p95_us,
                t.latency.p99_us,
            ));
        }
        s
    }

    /// JSON object (manual rendering; no serde in the workspace).
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{{\"tenant\":{},\"submitted\":{},\"shed\":{},\"completed\":{},\
                     \"peak_pending\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
                     \"max_us\":{},\"mean_us\":{:.1}}}",
                    t.tenant,
                    t.submitted,
                    t.shed,
                    t.completed,
                    t.peak_pending,
                    t.latency.p50_us,
                    t.latency.p95_us,
                    t.latency.p99_us,
                    t.latency.max_us,
                    t.latency.mean_us,
                )
            })
            .collect();
        format!(
            "{{\"scheduler\":\"{}\",\"backend\":\"{}\",\"process\":\"{}\",\
             \"submitted\":{},\"shed\":{},\"completed\":{},\"executed_tasks\":{},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"mean_us\":{:.1},\
             \"makespan_us\":{},\"jobs_per_s\":{:.4},\"shed_rate\":{:.4},\
             \"peak_pending\":{},\"tenants\":[{}]}}",
            self.scheduler,
            self.backend,
            self.process,
            self.submitted,
            self.shed,
            self.completed,
            self.executed_tasks,
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.p99_us,
            self.latency.max_us,
            self.latency.mean_us,
            self.makespan_us,
            self.jobs_per_sec,
            self.shed_rate,
            self.peak_pending,
            tenants.join(","),
        )
    }
}
