//! The job catalog: the app specs tenants draw from.
//!
//! Each entry pairs a built [`Workload`] with its [`GrainTable`] and
//! is shared by `Arc` across every submission of that spec — one
//! build serves the whole run, and the table's memoized
//! [`static_totals`](GrainTable::static_totals) gives every job
//! instance its ground truth in O(1) after the first call.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::RngExt;
use rips_apps::{
    gromos_with_grains, nqueens_with_grains, puzzle_with_grains, GrainTable, GromosConfig,
    NQueensConfig, PuzzleConfig,
};
use rips_taskgraph::Workload;

/// One submittable app spec: the task forest, the real work behind it,
/// and the scheduling inputs derived from both.
#[derive(Debug)]
pub struct JobApp {
    /// Catalog name (stable across runs; used in reports and seeds).
    pub name: &'static str,
    /// The task structure every backend schedules.
    pub workload: Arc<Workload>,
    /// The real computation behind each task (live backend; ground
    /// truth for both).
    pub table: Arc<GrainTable>,
    /// Task count — the DRR cost unit and the per-job conservation
    /// ground truth announced at dispatch.
    pub tasks: u64,
    /// RID load-update factor for this app (paper tuning).
    pub rid_u: f64,
}

fn job_app(name: &'static str, built: (Workload, GrainTable)) -> Arc<JobApp> {
    let (w, t) = built;
    let tasks = w.stats().tasks as u64;
    Arc::new(JobApp {
        name,
        workload: Arc::new(w),
        table: Arc::new(t),
        tasks,
        rid_u: 0.4,
    })
}

/// Small N-Queens boards split shallowly, so task counts stay
/// proportionate to the tiny boards (same shape `rips live` uses for
/// its smoke sizes).
fn small_queens(n: u32) -> NQueensConfig {
    NQueensConfig {
        n,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    }
}

/// An app mix tenants sample uniformly.
#[derive(Debug)]
pub struct Catalog {
    apps: Vec<Arc<JobApp>>,
}

impl Catalog {
    /// The standard serving mix: queens/puzzle/MD forests of mixed
    /// size (a few hundred µs to tens of ms of simulated work per
    /// job), small enough that the live backend can execute the real
    /// grains inside a CI smoke budget.
    pub fn standard() -> Catalog {
        Catalog {
            apps: vec![
                job_app("queens8", nqueens_with_grains(small_queens(8))),
                job_app("queens9", nqueens_with_grains(small_queens(9))),
                job_app("queens10", nqueens_with_grains(small_queens(10))),
                job_app(
                    "ida-mini",
                    puzzle_with_grains(PuzzleConfig {
                        scramble_len: 12,
                        seed: 7,
                        min_tasks: 8,
                        ns_per_node: 500,
                        split_divisor: 1024,
                        split_floor_nodes: 20_000,
                    }),
                ),
                job_app(
                    "gromos-mini",
                    gromos_with_grains(GromosConfig {
                        atoms: 300,
                        groups: 200,
                        ..GromosConfig::paper(8.0)
                    }),
                ),
            ],
        }
    }

    /// A two-entry mix for tests and the CI smoke gate: one search
    /// forest, one MD forest, both tiny.
    pub fn tiny() -> Catalog {
        Catalog {
            apps: vec![
                job_app("queens8", nqueens_with_grains(small_queens(8))),
                job_app(
                    "gromos-micro",
                    gromos_with_grains(GromosConfig {
                        atoms: 150,
                        groups: 64,
                        ..GromosConfig::paper(8.0)
                    }),
                ),
            ],
        }
    }

    /// The entries, in catalog order.
    pub fn apps(&self) -> &[Arc<JobApp>] {
        &self.apps
    }

    /// Uniform draw (tenant mix).
    pub fn pick(&self, rng: &mut SmallRng) -> Arc<JobApp> {
        Arc::clone(&self.apps[rng.random_range(0..self.apps.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_entries_share_one_build_per_spec() {
        let cat = Catalog::tiny();
        assert_eq!(cat.apps().len(), 2);
        for app in cat.apps() {
            assert!(app.tasks > 0);
            assert_eq!(
                app.table.rounds(),
                app.workload.rounds.len(),
                "{}: table must cover the workload",
                app.name
            );
            // Ground truth is memoized: two calls, one derivation.
            assert_eq!(app.table.static_totals(), app.table.static_totals());
        }
    }
}
