//! Offered-load sweep across the roster on both backends.
//!
//! Writes `BENCH_SERVE.json`: one series per (scheduler, backend),
//! each series a calibrated load sweep with per-level latency
//! percentiles, throughput, shed rate, and the saturation knee. The
//! checked-in copy at the repo root is the evidence artifact; CI's
//! `serve-smoke` job regenerates a `--quick` version and
//! schema-validates it.
//!
//! Usage:
//!   bench_serve [--out BENCH_SERVE.json] [--quick] [--seed N]
//!               [--schedulers RIPS,RIPS-H,RID] [--nodes 8]
//!               [--threads 2] [--tenants 4] [--jobs 25]
//!               [--loads 0.2,0.5,0.8,1.1,1.5,2.0] [--process poisson]

use std::fmt::Write as _;

use rips_serve::sweep::{sweep_one, SchedulerSeries, SweepConfig};
use rips_serve::{ArrivalProcess, Catalog, DesimBackend, LiveBackend};

fn arg(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn series_json(s: &SchedulerSeries) -> String {
    let mut points = String::new();
    for (i, p) in s.points.iter().enumerate() {
        if i > 0 {
            points.push(',');
        }
        let r = &p.report;
        let _ = write!(
            points,
            "{{\"load\":{:.2},\"offered_jobs_per_s\":{:.4},\"jobs_per_s\":{:.4},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"mean_us\":{:.1},\
             \"shed_rate\":{:.4},\"completed\":{},\"shed\":{},\"submitted\":{},\
             \"peak_pending\":{},\"serve_audit_ok\":{}}}",
            p.load,
            p.offered_jobs_per_sec,
            r.jobs_per_sec,
            r.latency.p50_us,
            r.latency.p95_us,
            r.latency.p99_us,
            r.latency.mean_us,
            r.shed_rate,
            r.completed,
            r.shed,
            r.submitted,
            r.peak_pending,
            p.serve_audit_ok,
        );
    }
    format!(
        "{{\"scheduler\":\"{}\",\"backend\":\"{}\",\"mean_service_us\":{},\
         \"audited\":{},\"max_spread\":{},\"phases_checked\":{},\
         \"knee_load\":{},\"points\":[{}]}}",
        s.scheduler,
        s.backend,
        s.mean_service_us,
        s.audited_ok,
        s.max_spread,
        s.phases_checked,
        s.knee_load
            .map(|k| format!("{k:.2}"))
            .unwrap_or_else(|| "null".into()),
        points,
    )
}

fn report_series(s: &SchedulerSeries) {
    let knee = s
        .knee_load
        .map(|k| format!("{k:.2}"))
        .unwrap_or_else(|| "none".into());
    eprintln!(
        "  {} / {}: mean service {} us, audited {}, max spread {}, knee at load {}",
        s.scheduler, s.backend, s.mean_service_us, s.audited_ok, s.max_spread, knee
    );
    for p in &s.points {
        eprintln!(
            "    load {:.2}: {:.1} jobs/s offered, {:.1} achieved, p99 {} us, shed {:.1}%",
            p.load,
            p.offered_jobs_per_sec,
            p.report.jobs_per_sec,
            p.report.latency.p99_us,
            p.report.shed_rate * 100.0,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = has_flag(&args, "--quick");
    let out_path = arg(&args, "--out").unwrap_or_else(|| "BENCH_SERVE.json".into());
    let seed: u64 = arg(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let nodes: usize = arg(&args, "--nodes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let threads: usize = arg(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let tenants: u32 = arg(&args, "--tenants")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let jobs: u32 = arg(&args, "--jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 8 } else { 25 });
    let schedulers: Vec<String> = arg(&args, "--schedulers")
        .unwrap_or_else(|| "RIPS,RIPS-H,RID".into())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let loads: Vec<f64> = arg(&args, "--loads")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| {
            if quick {
                vec![0.3, 1.0, 2.5]
            } else {
                vec![0.2, 0.5, 0.8, 1.1, 1.5, 2.0]
            }
        });
    let process = arg(&args, "--process")
        .and_then(|s| ArrivalProcess::parse(&s))
        .unwrap_or(ArrivalProcess::Poisson);

    let catalog = if quick {
        Catalog::tiny()
    } else {
        Catalog::standard()
    };
    let cfg = SweepConfig {
        load_factors: loads,
        tenants,
        jobs_per_tenant: jobs,
        process,
        seed,
        seed_variants: if quick { 1 } else { 2 },
        ..SweepConfig::default()
    };

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut series = Vec::new();
    for sched in &schedulers {
        eprintln!("sweep {sched} on desim ({nodes} nodes)...");
        let s = sweep_one(&cfg, sched, &catalog, &mut DesimBackend::new(nodes));
        report_series(&s);
        series.push(series_json(&s));

        eprintln!("sweep {sched} on live ({threads} threads)...");
        let s = sweep_one(&cfg, sched, &catalog, &mut LiveBackend::new(threads));
        report_series(&s);
        series.push(series_json(&s));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"seed\": {seed},\n  \"quick\": {quick},\n  \
         \"tenants\": {tenants},\n  \"jobs_per_tenant\": {jobs},\n  \
         \"process\": \"{}\",\n  \"desim_nodes\": {nodes},\n  \
         \"live_threads\": {threads},\n  \"host_parallelism\": {host},\n  \
         \"series\": [\n    {}\n  ]\n}}\n",
        process.label(),
        series.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
