//! Open-loop traffic generation: each tenant's job arrivals are drawn
//! ahead of time from a seeded interarrival process, so the offered
//! load never reacts to service times (the defining property of an
//! open-loop experiment — see EXPERIMENTS.md) and a run is fully
//! determined by its seed.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::catalog::{Catalog, JobApp};

/// Interarrival process shape. Both produce the same long-run offered
/// rate for a given mean; they differ in variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential interarrival gaps (memoryless, the M/G/1 textbook
    /// arrival side).
    Poisson,
    /// Arrivals come in bursts: `burst` jobs in quick succession
    /// (gaps of one tenth of the mean), then one exponential gap
    /// stretched by `burst` so the long-run rate matches Poisson at
    /// the same mean.
    Bursty {
        /// Jobs per burst (≥ 1; 1 degenerates to Poisson).
        burst: u32,
    },
}

impl ArrivalProcess {
    /// Parses `poisson` or `bursty[:burst]`.
    pub fn parse(s: &str) -> Option<ArrivalProcess> {
        match s.split(':').collect::<Vec<_>>().as_slice() {
            ["poisson"] => Some(ArrivalProcess::Poisson),
            ["bursty"] => Some(ArrivalProcess::Bursty { burst: 4 }),
            ["bursty", b] => b.parse().ok().map(|burst| ArrivalProcess::Bursty { burst }),
            _ => None,
        }
    }

    /// Label used in reports and JSON.
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson => "poisson".into(),
            ArrivalProcess::Bursty { burst } => format!("bursty:{burst}"),
        }
    }
}

/// The traffic side of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of simulated tenants.
    pub tenants: u32,
    /// Jobs each tenant submits over the run.
    pub jobs_per_tenant: u32,
    /// Mean interarrival gap per tenant (µs of serve time).
    pub mean_interarrival_us: u64,
    /// Gap distribution.
    pub process: ArrivalProcess,
    /// Seed for the per-tenant interarrival/app-choice streams. This
    /// is the *only* randomness in the serve layer (RIPS-L002: seeded
    /// shim RNG, no ambient entropy).
    pub seed: u64,
}

/// One job submission, fixed before the run starts.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Serve-timeline submission instant (µs).
    pub time: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Serve-wide job id (position in global arrival order).
    pub job: u64,
    /// What the tenant asked to run.
    pub app: Arc<JobApp>,
}

/// SplitMix64-style mix so per-tenant streams are decorrelated.
fn mix_seed(seed: u64, tenant: u64) -> u64 {
    let mut z = seed ^ tenant.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential gap with the given mean, via inverse CDF on the shim's
/// `[0, 1)` uniform. Clamped to ≥ 1 µs so arrivals strictly advance
/// within a tenant.
fn exp_gap(rng: &mut SmallRng, mean_us: u64) -> u64 {
    let u: f64 = rng.random();
    let gap = -(1.0 - u).ln() * mean_us as f64;
    (gap as u64).max(1)
}

/// Generates the full arrival schedule: per-tenant streams drawn
/// independently, merged by `(time, tenant)`, job ids assigned in
/// merged order. Deterministic in `cfg.seed`.
pub fn generate(cfg: &TrafficConfig, catalog: &Catalog) -> Vec<Arrival> {
    let mut all = Vec::new();
    for tenant in 0..cfg.tenants {
        let mut rng = SmallRng::seed_from_u64(mix_seed(cfg.seed, u64::from(tenant)));
        let mut t = 0u64;
        let mut in_burst = 0u32;
        for _ in 0..cfg.jobs_per_tenant {
            let gap = match cfg.process {
                ArrivalProcess::Poisson => exp_gap(&mut rng, cfg.mean_interarrival_us),
                ArrivalProcess::Bursty { burst } => {
                    let burst = burst.max(1);
                    if in_burst == 0 {
                        in_burst = burst - 1;
                        exp_gap(&mut rng, cfg.mean_interarrival_us * u64::from(burst))
                    } else {
                        in_burst -= 1;
                        (cfg.mean_interarrival_us / 10).max(1)
                    }
                }
            };
            t += gap;
            all.push(Arrival {
                time: t,
                tenant,
                job: 0, // assigned after the merge
                app: catalog.pick(&mut rng),
            });
        }
    }
    all.sort_by_key(|a| (a.time, a.tenant));
    for (i, a) in all.iter_mut().enumerate() {
        a.job = i as u64;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(process: ArrivalProcess) -> TrafficConfig {
        TrafficConfig {
            tenants: 3,
            jobs_per_tenant: 50,
            mean_interarrival_us: 10_000,
            process,
            seed: 42,
        }
    }

    #[test]
    fn schedule_is_seed_deterministic_and_ordered() {
        let cat = Catalog::tiny();
        let a = generate(&cfg(ArrivalProcess::Poisson), &cat);
        let b = generate(&cfg(ArrivalProcess::Poisson), &cat);
        assert_eq!(a.len(), 150);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.time, x.tenant, x.job), (y.time, y.tenant, y.job));
            assert_eq!(x.app.name, y.app.name);
        }
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.iter().enumerate().all(|(i, x)| x.job == i as u64));
    }

    #[test]
    fn poisson_mean_gap_is_roughly_the_configured_mean() {
        let cat = Catalog::tiny();
        let c = TrafficConfig {
            tenants: 1,
            jobs_per_tenant: 2000,
            ..cfg(ArrivalProcess::Poisson)
        };
        let a = generate(&c, &cat);
        let span = a.last().unwrap().time - a[0].time;
        let mean = span as f64 / (a.len() - 1) as f64;
        assert!(
            (mean - 10_000.0).abs() < 1_500.0,
            "mean gap {mean} too far from 10000"
        );
    }

    #[test]
    fn bursty_matches_poisson_rate_but_clumps() {
        let cat = Catalog::tiny();
        let c = TrafficConfig {
            tenants: 1,
            jobs_per_tenant: 2000,
            ..cfg(ArrivalProcess::Bursty { burst: 4 })
        };
        let a = generate(&c, &cat);
        let span = a.last().unwrap().time - a[0].time;
        let mean = span as f64 / (a.len() - 1) as f64;
        assert!(
            (mean - 10_000.0).abs() < 2_500.0,
            "long-run bursty rate {mean} drifted from 10000"
        );
        // Clumping: many gaps are the short intra-burst gap.
        let short = a
            .windows(2)
            .filter(|w| w[1].time - w[0].time <= 1_000)
            .count();
        assert!(short > a.len() / 2, "only {short} short gaps");
    }
}
