//! Deficit round robin across tenants.
//!
//! Jobs cost their task count; each tenant banks `quantum` task-units
//! of deficit per rotation visit and dispatches its head job once the
//! bank covers the cost. A tenant whose queue empties loses its bank
//! (the classic DRR reset), so idle tenants cannot hoard service. The
//! result is long-run throughput fairness in task-units, not job
//! counts — a tenant submitting big forests gets the same task
//! bandwidth as one submitting small ones.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::catalog::JobApp;

/// One admitted job waiting for the fleet.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Serve-wide job id.
    pub job: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Submission instant (µs) — latency is measured from here.
    pub arrival: u64,
    /// What to run.
    pub app: Arc<JobApp>,
    /// DRR cost (the app's task count).
    pub cost: u64,
}

/// The fairness layer: per-tenant FIFO queues drained by deficit
/// round robin.
#[derive(Debug)]
pub struct Drr {
    quantum: u64,
    queues: BTreeMap<u32, VecDeque<QueuedJob>>,
    deficit: BTreeMap<u32, u64>,
    /// Tenants with non-empty queues, in activation order.
    rotation: Vec<u32>,
    cursor: usize,
}

impl Drr {
    /// A scheduler granting `quantum` task-units per visit (≥ 1).
    pub fn new(quantum: u64) -> Self {
        Drr {
            quantum: quantum.max(1),
            queues: BTreeMap::new(),
            deficit: BTreeMap::new(),
            rotation: Vec::new(),
            cursor: 0,
        }
    }

    /// Queues one admitted job behind its tenant's earlier jobs.
    pub fn enqueue(&mut self, job: QueuedJob) {
        let tenant = job.tenant;
        let q = self.queues.entry(tenant).or_default();
        if q.is_empty() {
            self.rotation.push(tenant);
        }
        q.push_back(job);
    }

    /// Whether any job is queued.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Earliest instant at which some job could dispatch: the minimum
    /// arrival over tenant queue heads (FIFO per tenant, so later
    /// jobs cannot jump their own head).
    pub fn earliest_ready(&self) -> Option<u64> {
        self.queues
            .values()
            .filter_map(|q| q.front())
            .map(|j| j.arrival)
            .min()
    }

    /// Picks the next job to dispatch at time `now` (only jobs with
    /// `arrival <= now` are eligible), banking deficit as the
    /// rotation is walked. `None` when nothing is eligible yet.
    pub fn pick(&mut self, now: u64) -> Option<QueuedJob> {
        let mut scanned = 0;
        let mut any_eligible = false;
        loop {
            if self.rotation.is_empty() || (scanned >= self.rotation.len() && !any_eligible) {
                return None;
            }
            if self.cursor >= self.rotation.len() {
                self.cursor = 0;
            }
            let tenant = self.rotation[self.cursor];
            let head = self.queues.get(&tenant).and_then(|q| q.front());
            let eligible = head.is_some_and(|j| j.arrival <= now);
            if !eligible {
                self.cursor += 1;
                scanned += 1;
                continue;
            }
            any_eligible = true;
            let cost = head.expect("eligible head").cost;
            let bank = self.deficit.entry(tenant).or_insert(0);
            if *bank < cost {
                *bank += self.quantum;
                self.cursor += 1;
                scanned += 1;
                continue;
            }
            *bank -= cost;
            let q = self.queues.get_mut(&tenant).expect("tenant queued");
            let job = q.pop_front().expect("eligible head");
            if q.is_empty() {
                self.queues.remove(&tenant);
                self.deficit.remove(&tenant); // DRR reset: no banking while idle
                self.rotation.remove(self.cursor);
            }
            return Some(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn job(cat: &Catalog, id: u64, tenant: u32, cost: u64) -> QueuedJob {
        QueuedJob {
            job: id,
            tenant,
            arrival: 0,
            app: Arc::clone(&cat.apps()[0]),
            cost,
        }
    }

    #[test]
    fn equal_cost_tenants_alternate() {
        let cat = Catalog::tiny();
        let mut d = Drr::new(10);
        for i in 0..4 {
            d.enqueue(job(&cat, i, 0, 10));
            d.enqueue(job(&cat, 100 + i, 1, 10));
        }
        let mut order = Vec::new();
        while let Some(j) = d.pick(u64::MAX) {
            order.push(j.tenant);
        }
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn task_bandwidth_is_fair_despite_job_size_mismatch() {
        // Tenant 0 queues 12 one-unit jobs, tenant 1 queues 4
        // three-unit jobs: over any window both get ~equal task-units.
        let cat = Catalog::tiny();
        let mut d = Drr::new(3);
        for i in 0..12 {
            d.enqueue(job(&cat, i, 0, 1));
        }
        for i in 0..4 {
            d.enqueue(job(&cat, 100 + i, 1, 3));
        }
        let (mut u0, mut u1) = (0u64, 0u64);
        for _ in 0..8 {
            let j = d.pick(u64::MAX).unwrap();
            if j.tenant == 0 {
                u0 += j.cost;
            } else {
                u1 += j.cost;
            }
        }
        assert!(u0.abs_diff(u1) <= 3, "task-units diverged: {u0} vs {u1}");
    }

    #[test]
    fn future_arrivals_are_not_eligible() {
        let cat = Catalog::tiny();
        let mut d = Drr::new(10);
        let mut j = job(&cat, 0, 0, 5);
        j.arrival = 100;
        d.enqueue(j);
        assert!(d.pick(99).is_none());
        assert_eq!(d.earliest_ready(), Some(100));
        assert!(d.pick(100).is_some());
        assert!(d.is_empty());
    }

    #[test]
    fn emptied_tenant_loses_its_bank() {
        let cat = Catalog::tiny();
        let mut d = Drr::new(100);
        d.enqueue(job(&cat, 0, 0, 1));
        assert!(d.pick(u64::MAX).is_some());
        // Tenant 0 drained; its banked 99 units must not persist.
        d.enqueue(job(&cat, 1, 0, 50));
        d.enqueue(job(&cat, 2, 1, 50));
        let first = d.pick(u64::MAX).unwrap();
        // Fresh banks for both: rotation order (activation order)
        // decides, and tenant 0 re-activated first.
        assert_eq!(first.job, 1);
    }
}
