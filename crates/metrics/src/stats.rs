//! Trial aggregation: Figure 4 averages 100 random test cases per
//! point; this is the accumulator those loops use.

/// Streaming aggregate of f64 samples: count, mean, min, max, and
/// (population) standard deviation via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aggregate {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Aggregate {
    /// Empty aggregate.
    pub fn new() -> Self {
        Aggregate {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty aggregate).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another aggregate into this one (parallel trials).
    pub fn merge(&mut self, other: &Aggregate) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_bounds() {
        let mut a = Aggregate::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 4.0);
        // Population stddev of 1..4 = sqrt(1.25).
        assert!((a.stddev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i * i % 13) as f64).collect();
        let mut whole = Aggregate::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Aggregate::new();
        let mut right = Aggregate::new();
        for &x in &xs[..20] {
            left.push(x);
        }
        for &x in &xs[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregate_is_harmless() {
        let mut a = Aggregate::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.stddev(), 0.0);
        let b = Aggregate::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
    }
}
