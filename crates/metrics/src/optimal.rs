//! Zero-overhead list scheduling: the Table II idealisation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rips_taskgraph::{TaskForest, TaskId, Workload};

/// Makespan of one forest under longest-processing-time list scheduling
/// on `n` processors with zero overhead, respecting parent→child
/// precedence. LPT list scheduling is within a small constant of
/// optimal and is exact in the many-small-task regimes the paper's
/// workloads live in.
fn forest_makespan(forest: &TaskForest, n: usize) -> u64 {
    assert!(n > 0);
    if forest.is_empty() {
        return 0;
    }
    // Processors by earliest-free time.
    let mut procs: BinaryHeap<Reverse<u64>> = (0..n).map(|_| Reverse(0)).collect();
    // Tasks ready to run (LPT order, carrying their release times), and
    // tasks whose parent is still running (by release time).
    let mut ready: BinaryHeap<(u64, u64, TaskId)> = forest
        .roots()
        .iter()
        .map(|&r| (forest.task(r).grain_us, 0, r))
        .collect();
    let mut future: BinaryHeap<Reverse<(u64, TaskId)>> = BinaryHeap::new();
    // Completions not yet processed (children not yet released).
    let mut completions: BinaryHeap<Reverse<(u64, TaskId)>> = BinaryHeap::new();
    let mut makespan = 0u64;
    let mut remaining = forest.len();

    while remaining > 0 {
        if let Some(&(grain, _, _)) = ready.peek() {
            let Reverse(free_at) = *procs.peek().expect("n > 0");
            // Release every completion that happens before this
            // assignment could start; a released child may be a better
            // (larger) choice or enable an earlier start elsewhere.
            if let Some(&Reverse((finish, _))) = completions.peek() {
                if finish <= free_at {
                    let Reverse((finish, task)) = completions.pop().unwrap();
                    for &c in &forest.task(task).children {
                        future.push(Reverse((finish, c)));
                    }
                    continue;
                }
            }
            // Move released tasks that are ready by `free_at` into the
            // LPT pool.
            let mut moved = false;
            while let Some(&Reverse((at, _))) = future.peek() {
                if at <= free_at {
                    let Reverse((at, t)) = future.pop().unwrap();
                    ready.push((forest.task(t).grain_us, at, t));
                    moved = true;
                } else {
                    break;
                }
            }
            if moved {
                continue; // re-evaluate with the enlarged pool
            }
            let _ = grain;
            let (grain, ready_at, task) = ready.pop().unwrap();
            procs.pop();
            let finish = free_at.max(ready_at) + grain;
            procs.push(Reverse(finish));
            completions.push(Reverse((finish, task)));
            makespan = makespan.max(finish);
            remaining -= 1;
        } else {
            // Nothing ready: advance time by the next completion (its
            // children become available), or pull the next future task.
            if let Some(Reverse((finish, task))) = completions.pop() {
                for &c in &forest.task(task).children {
                    future.push(Reverse((finish, c)));
                }
                // Tasks released at `finish` are now candidates.
                while let Some(&Reverse((at, _))) = future.peek() {
                    if at <= finish {
                        let Reverse((at, t)) = future.pop().unwrap();
                        ready.push((forest.task(t).grain_us, at, t));
                    } else {
                        break;
                    }
                }
            } else if let Some(Reverse((at, t))) = future.pop() {
                ready.push((forest.task(t).grain_us, at, t));
            } else {
                unreachable!("tasks remain but nothing is ready or running");
            }
        }
    }
    makespan
}

/// Optimal (zero-overhead, LPT-scheduled) makespan of a whole workload
/// on `n` processors: rounds are separated by barriers, so their
/// makespans add.
pub fn optimal_makespan(workload: &Workload, n: usize) -> u64 {
    workload.rounds.iter().map(|r| forest_makespan(r, n)).sum()
}

/// The paper's optimal efficiency: `µ_opt = Ts / (N · T_opt)`.
///
/// ```
/// use rips_metrics::optimal_efficiency;
/// use rips_taskgraph::flat_uniform;
///
/// // 9 equal tasks on 4 processors: one wave of 4, one of 4, one of 1
/// // — the last wave idles 3 processors, so µ_opt = 9/12.
/// let w = flat_uniform(9, 10, 10, 0);
/// assert!((optimal_efficiency(&w, 4) - 0.75).abs() < 1e-12);
/// ```
pub fn optimal_efficiency(workload: &Workload, n: usize) -> f64 {
    let ts = workload.stats().total_work_us;
    let tp = optimal_makespan(workload, n);
    if tp == 0 {
        return 1.0;
    }
    ts as f64 / (n as f64 * tp as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_taskgraph::{flat_uniform, geometric_tree};

    fn flat(grains: &[u64]) -> Workload {
        let mut f = TaskForest::new();
        for &g in grains {
            f.add_root(g);
        }
        Workload::single("flat", f)
    }

    #[test]
    fn equal_grains_divide_evenly() {
        // 8 tasks of 10 on 4 procs: 2 waves = 20.
        let w = flat(&[10; 8]);
        assert_eq!(optimal_makespan(&w, 4), 20);
        assert!((optimal_efficiency(&w, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remainder_wave_costs_full_round() {
        // 9 tasks of 10 on 4 procs: 3 waves = 30; µ = 90/120 = 0.75.
        let w = flat(&[10; 9]);
        assert_eq!(optimal_makespan(&w, 4), 30);
        assert!((optimal_efficiency(&w, 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lpt_packs_mixed_grains() {
        // Grains 6,5,4,3,2,2 on 2 procs: LPT gives 6+4+2 / 5+3+2 = 11.
        let w = flat(&[6, 5, 4, 3, 2, 2]);
        assert_eq!(optimal_makespan(&w, 2), 11);
    }

    #[test]
    fn single_huge_task_bounds_makespan() {
        let w = flat(&[100, 1, 1, 1]);
        assert_eq!(optimal_makespan(&w, 4), 100);
    }

    #[test]
    fn precedence_chain_is_critical_path() {
        // root(5) -> a(7) -> b(9): no parallelism available.
        let mut f = TaskForest::new();
        let r = f.add_root(5);
        let a = f.add_child(r, 7);
        f.add_child(a, 9);
        let w = Workload::single("chain", f);
        assert_eq!(optimal_makespan(&w, 8), 21);
        assert_eq!(w.rounds[0].critical_path_us(), 21);
    }

    #[test]
    fn tree_release_times_respected() {
        // root(10) releases two children(10); on 2 procs: 10 + 10 = 20
        // (second proc idles during the root).
        let mut f = TaskForest::new();
        let r = f.add_root(10);
        f.add_child(r, 10);
        f.add_child(r, 10);
        let w = Workload::single("v", f);
        assert_eq!(optimal_makespan(&w, 2), 20);
    }

    #[test]
    fn rounds_are_barriers() {
        let w = Workload {
            name: "two".into(),
            rounds: vec![
                flat(&[10; 4]).rounds[0].clone(),
                flat(&[10; 4]).rounds[0].clone(),
            ],
        };
        assert_eq!(optimal_makespan(&w, 4), 20);
    }

    #[test]
    fn makespan_lower_bounds_hold() {
        // On any workload: max(Ts/N rounded up per-round, critical
        // path) ≤ makespan ≤ Ts.
        for (seed, n) in [(1u64, 3usize), (2, 7), (3, 16)] {
            let w = geometric_tree(5, 5, 3, 40, seed);
            let ts = w.stats().total_work_us;
            let cp = w.stats().critical_path_us;
            let ms = optimal_makespan(&w, n);
            assert!(ms >= cp, "below critical path");
            assert!(ms >= ts.div_ceil(n as u64), "below work bound");
            assert!(ms <= ts, "worse than sequential");
        }
    }

    #[test]
    fn more_processors_never_slower() {
        // LPT list scheduling is not anomaly-free in theory, but on
        // these forests doubling processors should not hurt.
        let w = flat_uniform(200, 5, 50, 9);
        let m4 = optimal_makespan(&w, 4);
        let m8 = optimal_makespan(&w, 8);
        assert!(m8 <= m4);
    }

    #[test]
    fn empty_workload() {
        let w = Workload {
            name: "empty".into(),
            rounds: vec![],
        };
        assert_eq!(optimal_makespan(&w, 4), 0);
        assert_eq!(optimal_efficiency(&w, 4), 1.0);
    }
}
