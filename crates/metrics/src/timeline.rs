//! ASCII utilization chart from recorded busy spans.

// Indexed loops below mirror the paper's per-column vector algebra;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
use rips_desim::{BusySpan, RunStats, WorkKind};

/// Renders the run as one row of `width` buckets per node:
/// `#` mostly user work, `+` mostly system overhead (Table I's `Th`),
/// `.` mostly idle (Table I's `Ti`) — "mostly" meaning the plurality
/// of the bucket's virtual time.
///
/// Requires the engine to have run with timeline recording
/// (`Costs::record_timeline` / `Engine::record_timeline`); returns an
/// explanatory placeholder otherwise.
pub fn utilization_chart(stats: &RunStats, width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let Some(timelines) = &stats.timelines else {
        return "(no timeline recorded: enable Costs::record_timeline)".to_string();
    };
    if stats.end_time == 0 {
        return "(empty run)".to_string();
    }
    let end = stats.end_time as f64;
    let mut out = String::new();
    out.push_str(&format!(
        "utilization over {:.3} s  (#: user  +: overhead  .: idle)\n",
        end / 1e6
    ));
    for (node, spans) in timelines.iter().enumerate() {
        let mut user = vec![0.0f64; width];
        let mut over = vec![0.0f64; width];
        for span in spans {
            bucketize(span, end, width, &mut user, &mut over);
        }
        let bucket_len = end / width as f64;
        out.push_str(&format!("{node:4} "));
        for b in 0..width {
            let idle = bucket_len - user[b] - over[b];
            let ch = if user[b] >= over[b] && user[b] >= idle {
                '#'
            } else if over[b] >= idle {
                '+'
            } else {
                '.'
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Distributes one span's duration over the buckets it overlaps.
fn bucketize(span: &BusySpan, end: f64, width: usize, user: &mut [f64], over: &mut [f64]) {
    let bucket_len = end / width as f64;
    let target = match span.kind {
        WorkKind::User => user,
        WorkKind::Overhead => over,
    };
    let (s, e) = (span.start as f64, span.end as f64);
    let first = ((s / bucket_len) as usize).min(width - 1);
    let last = ((e / bucket_len) as usize).min(width - 1);
    for b in first..=last {
        let b_start = b as f64 * bucket_len;
        let b_end = b_start + bucket_len;
        let overlap = (e.min(b_end) - s.max(b_start)).max(0.0);
        target[b] += overlap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_desim::{NetStats, NodeStats};

    fn stats_with(spans: Vec<Vec<BusySpan>>, end: u64) -> RunStats {
        RunStats {
            end_time: end,
            nodes: vec![NodeStats::default(); spans.len()],
            net: NetStats::default(),
            events: 0,
            peak_queue_depth: 0,
            mem: Default::default(),
            timelines: Some(spans),
        }
    }

    #[test]
    fn fully_busy_node_renders_hashes() {
        let stats = stats_with(
            vec![vec![BusySpan {
                start: 0,
                end: 1000,
                kind: WorkKind::User,
            }]],
            1000,
        );
        let chart = utilization_chart(&stats, 10);
        let row = chart.lines().nth(1).unwrap();
        assert!(row.ends_with("##########"), "{row}");
    }

    #[test]
    fn idle_second_half_renders_dots() {
        let stats = stats_with(
            vec![vec![BusySpan {
                start: 0,
                end: 500,
                kind: WorkKind::User,
            }]],
            1000,
        );
        let chart = utilization_chart(&stats, 10);
        let row = chart.lines().nth(1).unwrap();
        assert!(row.ends_with("#####....."), "{row}");
    }

    #[test]
    fn overhead_renders_plus() {
        let stats = stats_with(
            vec![vec![BusySpan {
                start: 0,
                end: 1000,
                kind: WorkKind::Overhead,
            }]],
            1000,
        );
        let chart = utilization_chart(&stats, 4);
        assert!(chart.lines().nth(1).unwrap().ends_with("++++"));
    }

    #[test]
    fn empty_run_is_explained() {
        // Timelines recorded but nothing ever ran: zero end time must
        // short-circuit before the f64 bucket math divides by it.
        let stats = stats_with(vec![vec![], vec![]], 0);
        assert_eq!(utilization_chart(&stats, 8), "(empty run)");
    }

    #[test]
    fn span_wider_than_bucket_fills_every_covered_bucket() {
        // One span covering buckets 2..=7 of 10 exactly; the buckets it
        // does not touch must stay idle on both sides.
        let stats = stats_with(
            vec![vec![BusySpan {
                start: 200,
                end: 800,
                kind: WorkKind::User,
            }]],
            1000,
        );
        let chart = utilization_chart(&stats, 10);
        let row = chart.lines().nth(1).unwrap();
        assert!(row.ends_with("..######.."), "{row}");
    }

    #[test]
    fn span_on_exact_bucket_boundary_stays_in_its_bucket() {
        // Span [250, 500) with bucket length 250: `last` lands on
        // bucket 2, whose overlap must come out exactly 0 — the span
        // belongs entirely to bucket 1.
        let stats = stats_with(
            vec![vec![BusySpan {
                start: 250,
                end: 500,
                kind: WorkKind::User,
            }]],
            1000,
        );
        let chart = utilization_chart(&stats, 4);
        let row = chart.lines().nth(1).unwrap();
        assert!(row.ends_with(".#.."), "{row}");
    }

    #[test]
    fn missing_timeline_is_explained() {
        let stats = RunStats {
            end_time: 10,
            nodes: vec![],
            net: NetStats::default(),
            events: 0,
            peak_queue_depth: 0,
            mem: Default::default(),
            timelines: None,
        };
        assert!(utilization_chart(&stats, 5).contains("no timeline"));
    }
}
