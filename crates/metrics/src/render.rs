//! Fixed-width text rendering for the report binaries.

/// A simple aligned text table (first column left-aligned, the rest
/// right-aligned), used by the Table I/II/III regenerators.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].chars().count());
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// A figure rendered as aligned data columns: one x column plus one
/// column per named series — the textual equivalent of the paper's
/// plots, and directly plottable.
#[derive(Debug, Clone)]
pub struct Series {
    x_label: String,
    names: Vec<String>,
    points: Vec<(String, Vec<f64>)>,
}

impl Series {
    /// Creates a figure with the x-axis label and series names.
    pub fn new<S: Into<String>>(x_label: S, names: Vec<S>) -> Self {
        Series {
            x_label: x_label.into(),
            names: names.into_iter().map(Into::into).collect(),
            points: Vec::new(),
        }
    }

    /// Appends one x position with a value per series.
    pub fn point<S: Into<String>>(&mut self, x: S, values: Vec<f64>) {
        assert_eq!(values.len(), self.names.len(), "value count mismatch");
        self.points.push((x.into(), values));
    }

    /// Renders as an aligned table with 4-significant-digit values.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            std::iter::once(self.x_label.clone())
                .chain(self.names.iter().cloned())
                .collect(),
        );
        for (x, values) in &self.points {
            table.row(
                std::iter::once(x.clone())
                    .chain(values.iter().map(|v| format!("{v:.4}")))
                    .collect(),
            );
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "12345"]);
        let out = t.render();
        assert_eq!(
            out,
            "name    value\n-------------\na           1\nlonger  12345"
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn series_renders_all_columns() {
        let mut s = Series::new("weight", vec!["8p", "16p"]);
        s.point("2", vec![0.01, 0.02]);
        s.point("100", vec![0.005, 0.5]);
        let out = s.render();
        assert!(out.contains("weight"));
        assert!(out.contains("0.0100"));
        assert!(out.contains("0.5000"));
        assert_eq!(out.lines().count(), 4);
    }
}
