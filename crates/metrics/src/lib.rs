//! Evaluation metrics and report rendering.
//!
//! * [`optimal_makespan`] / [`optimal_efficiency`] — the paper's Table
//!   II idealisation: "an optimal efficiency is calculated assuming (1)
//!   optimal scheduling; and (2) no overhead". Computed by
//!   longest-processing-time list scheduling with zero overhead,
//!   respecting task precedence and round barriers.
//! * [`quality_factor`] — Figure 5's normalized quality factor
//!   `(µ_opt − µ_rand) / (µ_opt − µ_g)`: 1 for the randomized baseline,
//!   larger for better schedulers.
//! * [`speedup`] — Table III's `Ts / Tp`.
//! * [`Table`] and [`Series`] — fixed-width text rendering for the
//!   bench binaries that regenerate the paper's tables and figures.
//! * [`utilization_chart`] — an ASCII Gantt view of a simulation's
//!   per-node timelines: user work vs system overhead (Table I's `Th`)
//!   vs idle (Table I's `Ti`).
//! * [`Aggregate`] — mean/min/max/stddev across repeated trials.

#![forbid(unsafe_code)]

mod optimal;
mod render;
mod stats;
mod timeline;

pub use optimal::{optimal_efficiency, optimal_makespan};
pub use render::{Series, Table};
pub use stats::Aggregate;
pub use timeline::utilization_chart;

/// Figure 5's normalized quality factor of scheduler `g`:
/// `(µ_opt − µ_rand) / (µ_opt − µ_g)`.
///
/// Equal to 1 for the randomized-allocation baseline; > 1 for
/// schedulers that close more of the gap to the ideal. If `mu_g`
/// reaches `mu_opt` the factor is unbounded; this returns `f64::INFINITY`
/// in that case (and the caller typically clamps for display).
///
/// # Panics
/// Panics if any efficiency is outside `(0, 1]` or `mu_opt` is not the
/// largest.
pub fn quality_factor(mu_opt: f64, mu_rand: f64, mu_g: f64) -> f64 {
    for (name, v) in [("mu_opt", mu_opt), ("mu_rand", mu_rand), ("mu_g", mu_g)] {
        assert!(v > 0.0 && v <= 1.0, "{name} = {v} out of range");
    }
    assert!(
        mu_opt >= mu_rand && mu_opt >= mu_g,
        "optimal efficiency must dominate ({mu_opt} vs {mu_rand}/{mu_g})"
    );
    let denom = mu_opt - mu_g;
    if denom == 0.0 {
        return f64::INFINITY;
    }
    (mu_opt - mu_rand) / denom
}

/// Table III's speedup `Ts / Tp` (both in the same unit).
pub fn speedup(ts_us: u64, tp_us: u64) -> f64 {
    assert!(tp_us > 0, "zero parallel time");
    ts_us as f64 / tp_us as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_factor_baseline_is_one() {
        assert_eq!(quality_factor(0.99, 0.65, 0.65), 1.0);
    }

    #[test]
    fn quality_factor_orders_schedulers() {
        let better = quality_factor(0.99, 0.65, 0.95);
        let worse = quality_factor(0.99, 0.65, 0.25);
        assert!(better > 1.0);
        assert!(worse < 1.0);
        assert!(better > worse);
    }

    #[test]
    fn quality_factor_saturates_at_optimum() {
        assert!(quality_factor(0.99, 0.65, 0.99).is_infinite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quality_factor_rejects_garbage() {
        quality_factor(1.4, 0.5, 0.5);
    }

    #[test]
    fn speedup_simple() {
        assert_eq!(speedup(1000, 100), 10.0);
    }
}
