//! Discrete-event simulator of a message-passing multicomputer.
//!
//! The paper's experiments ran on an Intel Paragon; this crate is the
//! substitute substrate (see DESIGN.md §2). It models:
//!
//! * `N` sequential nodes connected by a [`rips_topology::Topology`];
//! * asynchronous point-to-point messages with a configurable
//!   [`LatencyModel`] (`α + β·bytes + H·hops`, plus sender/receiver CPU
//!   costs charged as *system overhead*);
//! * per-node timers;
//! * virtual time in microseconds, with per-node accounting of **user
//!   compute**, **system overhead**, and (by subtraction) **idle** time —
//!   exactly the `T`, `Th`, `Ti` columns of the paper's Table I.
//!
//! Node behaviour is supplied as a [`Program`] state machine. The engine
//! is fully deterministic: events are ordered by `(time, sequence)`, and
//! each node owns a seeded RNG derived from the engine seed.

mod engine;
mod latency;
mod stats;

pub use engine::{Ctx, Engine, Program, TimerId};
pub use latency::LatencyModel;
pub use stats::{BusySpan, MemStats, NetStats, NodeStats, RunStats, WorkKind};

/// Virtual time in microseconds.
pub type Time = u64;

/// One millisecond in engine time units.
pub const MS: Time = 1_000;

/// One second in engine time units.
pub const SEC: Time = 1_000_000;
