//! Message cost model.

use crate::Time;

/// Cost model for point-to-point messages.
///
/// A message of `bytes` payload travelling `hops` links arrives after
/// `alpha_us + bytes * per_byte_ns / 1000 + hops * per_hop_us`
/// microseconds. Independently, the *sender* CPU is occupied for
/// `send_cpu_us` and the *receiver* CPU for `recv_cpu_us`; both are
/// charged as system overhead — this is what makes chatty protocols
/// (e.g. the gradient model) show large `Th` in Table I, matching the
/// paper's observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed network startup latency per message (µs).
    pub alpha_us: Time,
    /// Per-byte transfer cost (ns/byte).
    pub per_byte_ns: Time,
    /// Per-hop switching cost (µs/hop).
    pub per_hop_us: Time,
    /// CPU time the sender spends injecting a message (µs).
    pub send_cpu_us: Time,
    /// CPU time the receiver spends extracting a message (µs).
    pub recv_cpu_us: Time,
}

impl LatencyModel {
    /// Paragon-like calibration (see EXPERIMENTS.md): a one-hop task
    /// migration packet costs on the order of the paper's "about 1 ms
    /// per communication step" once payload and per-hop terms are
    /// included.
    pub fn paragon() -> Self {
        LatencyModel {
            alpha_us: 120,
            per_byte_ns: 40,
            per_hop_us: 60,
            send_cpu_us: 40,
            recv_cpu_us: 40,
        }
    }

    /// Zero-cost network: messages arrive instantly and consume no CPU.
    /// Used by idealised baselines (Table II's "no overhead" optimum)
    /// and by unit tests that check pure protocol logic.
    pub fn ideal() -> Self {
        LatencyModel {
            alpha_us: 0,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 0,
            recv_cpu_us: 0,
        }
    }

    /// Wire latency (excluding CPU costs) of a message.
    pub fn wire_latency(&self, bytes: usize, hops: usize) -> Time {
        self.alpha_us + (bytes as Time * self.per_byte_ns) / 1000 + hops as Time * self.per_hop_us
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::paragon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_latency_formula() {
        let m = LatencyModel {
            alpha_us: 100,
            per_byte_ns: 500,
            per_hop_us: 10,
            send_cpu_us: 0,
            recv_cpu_us: 0,
        };
        assert_eq!(m.wire_latency(0, 0), 100);
        assert_eq!(m.wire_latency(2000, 0), 100 + 1000);
        assert_eq!(m.wire_latency(0, 12), 100 + 120);
    }

    #[test]
    fn ideal_is_free() {
        let m = LatencyModel::ideal();
        assert_eq!(m.wire_latency(1 << 20, 100), 0);
    }

    #[test]
    fn paragon_step_is_order_1ms() {
        // The paper: "Each communication step to migrate tasks takes
        // about 1 ms." A migration packet carrying ~16 task descriptors
        // of 64 bytes over a few hops should land in [0.2 ms, 2 ms].
        let m = LatencyModel::paragon();
        let t = m.wire_latency(16 * 64, 6) + m.send_cpu_us + m.recv_cpu_us;
        assert!((200..2000).contains(&t), "got {t} µs");
    }
}
