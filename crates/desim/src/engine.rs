//! The event-driven simulation engine.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rips_topology::{NodeId, Topology};

use crate::{LatencyModel, NetStats, NodeStats, RunStats, Time, WorkKind};

/// Handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Behaviour of one simulated node (the SPMD "code image").
///
/// Handlers run to completion with sequential-node semantics: while a
/// handler's consumed compute time elapses, further events for the node
/// wait. All interaction with the machine goes through [`Ctx`].
pub trait Program {
    /// Message payload exchanged between nodes.
    type Msg;

    /// Called once per node at time 0, in node-id order.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message arrives (after the receive CPU cost has
    /// been charged as overhead).
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: u64) {
        let _ = (ctx, tag);
    }
}

struct SendReq<M> {
    to: NodeId,
    msg: M,
    bytes: usize,
    /// CPU consumed by the handler before this send was issued; the
    /// message departs at `handler_start + at_offset`.
    at_offset: Time,
}

struct TimerReq {
    id: u64,
    tag: u64,
    fire_offset: Time,
}

/// Node-side view of the machine during a handler invocation.
///
/// Effects (sends, timers, compute) are buffered and applied by the
/// engine when the handler returns, preserving deterministic ordering.
pub struct Ctx<'a, M> {
    now: Time,
    me: NodeId,
    n: usize,
    consumed_user: Time,
    consumed_overhead: Time,
    sends: Vec<SendReq<M>>,
    timers: Vec<TimerReq>,
    cancels: Vec<u64>,
    halt: bool,
    send_cpu_us: Time,
    next_timer_id: &'a mut u64,
    rng: &'a mut SmallRng,
}

impl<'a, M> Ctx<'a, M> {
    /// Virtual time at which the current handler began.
    pub fn now(&self) -> Time {
        self.now + self.consumed_user + self.consumed_overhead
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the machine.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Deterministic per-node random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Consume `dur` µs of CPU, classified as `kind`.
    pub fn compute(&mut self, dur: Time, kind: WorkKind) {
        match kind {
            WorkKind::User => self.consumed_user += dur,
            WorkKind::Overhead => self.consumed_overhead += dur,
        }
    }

    /// Send `msg` (`bytes` of payload) to node `to`. Charges the
    /// sender's CPU send cost as overhead; the message departs at the
    /// current intra-handler time and arrives after the wire latency.
    ///
    /// Sending to self is allowed and delivers after `alpha` only.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: usize) {
        assert!(to < self.n, "send to nonexistent node {to}");
        self.consumed_overhead += self.send_cpu_us;
        self.sends.push(SendReq {
            to,
            msg,
            bytes,
            at_offset: self.consumed_user + self.consumed_overhead,
        });
    }

    /// Send a copy of `msg` to every other node (naive broadcast:
    /// `N - 1` point-to-point messages, each paying full cost).
    pub fn send_all(&mut self, msg: M, bytes: usize)
    where
        M: Clone,
    {
        for to in 0..self.n {
            if to != self.me {
                self.send(to, msg.clone(), bytes);
            }
        }
    }

    /// Hardware-assisted signal: delivers `msg` to `to` paying only the
    /// network's fixed latency — no sender CPU, no payload. Models
    /// dedicated synchronisation hardware such as the Cray T3D's
    /// "eureka" or-barrier (paper §2).
    pub fn signal(&mut self, to: NodeId, msg: M) {
        assert!(to < self.n, "signal to nonexistent node {to}");
        self.sends.push(SendReq {
            to,
            msg,
            bytes: 0,
            at_offset: self.consumed_user + self.consumed_overhead,
        });
    }

    /// Broadcast a hardware signal to every other node (see
    /// [`Ctx::signal`]).
    pub fn signal_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for to in 0..self.n {
            if to != self.me {
                self.signal(to, msg.clone());
            }
        }
    }

    /// Arrange for [`Program::on_timer`] to be called with `tag` after
    /// `delay` µs of virtual time (measured from the current
    /// intra-handler time).
    pub fn set_timer(&mut self, delay: Time, tag: u64) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.timers.push(TimerReq {
            id,
            tag,
            fire_offset: self.consumed_user + self.consumed_overhead + delay,
        });
        TimerId(id)
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancels.push(id.0);
    }

    /// Stop the whole simulation once this handler returns. Used by a
    /// node that detects global termination.
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

enum EventKind<M> {
    Start,
    Message {
        from: NodeId,
        msg: M,
    },
    Timer {
        id: u64,
        tag: u64,
    },
    /// Contention mode: a message in flight, currently held at the
    /// event's node, still travelling toward `final_to`. Processed by
    /// the engine's router, not by the node's program (and therefore
    /// never deferred by node busy time).
    Forward {
        from: NodeId,
        final_to: NodeId,
        msg: M,
        bytes: usize,
    },
}

struct Event<M> {
    time: Time,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via Reverse: order by (time, seq).
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulation engine: owns the nodes, the event queue, the clock,
/// and all accounting.
pub struct Engine<P: Program> {
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    programs: Vec<P>,
    ready_at: Vec<Time>,
    stats: Vec<NodeStats>,
    net: NetStats,
    queue: BinaryHeap<std::cmp::Reverse<Event<P::Msg>>>,
    seq: u64,
    events_processed: u64,
    next_timer_id: u64,
    cancelled: HashSet<u64>,
    rngs: Vec<SmallRng>,
    last_activity: Time,
    timelines: Option<Vec<Vec<crate::BusySpan>>>,
    /// Store-and-forward link contention: directed links serialize
    /// transmissions. Off by default (contention-free network).
    contention: bool,
    link_free: HashMap<(NodeId, NodeId), Time>,
    /// Safety valve against runaway protocols; `run` panics past this.
    pub max_events: u64,
}

impl<P: Program> Engine<P> {
    /// Builds an engine over `topo` with one program per node
    /// (`make(node_id)`), deterministic under `seed`.
    pub fn new(
        topo: Arc<dyn Topology>,
        latency: LatencyModel,
        seed: u64,
        mut make: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = topo.len();
        assert!(n > 0, "machine must have at least one node");
        let programs: Vec<P> = (0..n).map(&mut make).collect();
        let rngs = (0..n)
            .map(|i| SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64))
            .collect();
        let mut queue = BinaryHeap::with_capacity(n * 4);
        for node in 0..n {
            queue.push(std::cmp::Reverse(Event {
                time: 0,
                seq: node as u64,
                node,
                kind: EventKind::Start,
            }));
        }
        Engine {
            topo,
            latency,
            ready_at: vec![0; n],
            stats: vec![NodeStats::default(); n],
            net: NetStats::default(),
            programs,
            queue,
            seq: n as u64,
            events_processed: 0,
            next_timer_id: 0,
            cancelled: HashSet::new(),
            rngs,
            last_activity: 0,
            timelines: None,
            contention: false,
            link_free: HashMap::new(),
            max_events: 500_000_000,
        }
    }

    /// Enables store-and-forward link contention: each directed link
    /// transmits one message at a time, `per_hop_us + bytes·per_byte`
    /// per hop, so bursts toward the same region queue up. Off by
    /// default (the contention-free model charges the route's total
    /// latency up front).
    pub fn enable_contention(&mut self, on: bool) {
        self.contention = on;
    }

    /// Enables per-node busy-span recording (off by default: one span
    /// per handler invocation costs memory on long runs). Spans within
    /// a handler are approximated as overhead-then-user, matching the
    /// dispatch-then-execute structure of the schedulers built on this
    /// engine.
    pub fn record_timeline(&mut self, on: bool) {
        self.timelines = if on {
            Some(vec![Vec::new(); self.programs.len()])
        } else {
            None
        };
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when the machine has no nodes (constructor forbids this).
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The interconnect.
    pub fn topology(&self) -> &Arc<dyn Topology> {
        &self.topo
    }

    /// Immutable access to a node's program (post-run inspection).
    pub fn program(&self, node: NodeId) -> &P {
        &self.programs[node]
    }

    /// Advances a contention-mode message one hop: waits for the
    /// outgoing link, transmits (store-and-forward), then either hands
    /// the message to the next router or delivers it.
    fn route_hop(
        &mut self,
        now: Time,
        at: NodeId,
        from: NodeId,
        final_to: NodeId,
        msg: P::Msg,
        bytes: usize,
    ) {
        let next = self
            .topo
            .route_next_hop(at, final_to)
            .expect("forward event at destination");
        let free = self.link_free.get(&(at, next)).copied().unwrap_or(0);
        let transmit = self.latency.per_hop_us + (bytes as Time * self.latency.per_byte_ns) / 1000;
        let done = free.max(now) + transmit.max(1);
        self.link_free.insert((at, next), done);
        self.seq += 1;
        let kind = if next == final_to {
            EventKind::Message { from, msg }
        } else {
            EventKind::Forward {
                from,
                final_to,
                msg,
                bytes,
            }
        };
        self.queue.push(std::cmp::Reverse(Event {
            time: done,
            seq: self.seq,
            node: next,
            kind,
        }));
    }

    /// Runs until the event queue drains or a handler calls
    /// [`Ctx::halt`]. Returns the accounting summary.
    ///
    /// # Panics
    /// Panics if more than `max_events` events are processed (protocol
    /// livelock guard).
    pub fn run(mut self) -> (Vec<P>, RunStats) {
        let mut halted = false;
        while let Some(std::cmp::Reverse(ev)) = self.queue.pop() {
            if halted {
                break;
            }
            let node = ev.node;
            // Router events are handled by the interconnect, not the
            // node's CPU: no deferral, no program involvement.
            if let EventKind::Forward {
                from,
                final_to,
                msg,
                bytes,
            } = ev.kind
            {
                self.events_processed += 1;
                self.route_hop(ev.time, node, from, final_to, msg, bytes);
                continue;
            }
            // Respect sequential-node semantics: if the node is still
            // busy, re-queue the event for when it frees up (keeping its
            // original sequence number so FIFO order is preserved among
            // same-time arrivals).
            if self.ready_at[node] > ev.time {
                self.queue.push(std::cmp::Reverse(Event {
                    time: self.ready_at[node],
                    ..ev
                }));
                continue;
            }
            if let EventKind::Timer { id, .. } = ev.kind {
                if self.cancelled.remove(&id) {
                    continue;
                }
            }
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.max_events,
                "event limit exceeded: protocol livelock?"
            );

            let start = ev.time;
            let mut ctx = Ctx {
                now: start,
                me: node,
                n: self.programs.len(),
                consumed_user: 0,
                consumed_overhead: 0,
                sends: Vec::new(),
                timers: Vec::new(),
                cancels: Vec::new(),
                halt: false,
                send_cpu_us: self.latency.send_cpu_us,
                next_timer_id: &mut self.next_timer_id,
                rng: &mut self.rngs[node],
            };
            match ev.kind {
                EventKind::Start => self.programs[node].on_start(&mut ctx),
                EventKind::Message { from, msg } => {
                    ctx.consumed_overhead += self.latency.recv_cpu_us;
                    self.programs[node].on_message(&mut ctx, from, msg)
                }
                EventKind::Timer { tag, .. } => self.programs[node].on_timer(&mut ctx, tag),
                EventKind::Forward { .. } => unreachable!("router events handled above"),
            }

            // Apply buffered effects.
            let consumed = ctx.consumed_user + ctx.consumed_overhead;
            let halt = ctx.halt;
            self.stats[node].user_us += ctx.consumed_user;
            self.stats[node].overhead_us += ctx.consumed_overhead;
            self.ready_at[node] = start + consumed;
            self.last_activity = self.last_activity.max(start + consumed);
            if let Some(timelines) = &mut self.timelines {
                if ctx.consumed_overhead > 0 {
                    timelines[node].push(crate::BusySpan {
                        start,
                        end: start + ctx.consumed_overhead,
                        kind: WorkKind::Overhead,
                    });
                }
                if ctx.consumed_user > 0 {
                    timelines[node].push(crate::BusySpan {
                        start: start + ctx.consumed_overhead,
                        end: start + consumed,
                        kind: WorkKind::User,
                    });
                }
            }

            let sends = std::mem::take(&mut ctx.sends);
            let timers = std::mem::take(&mut ctx.timers);
            let cancels = std::mem::take(&mut ctx.cancels);
            drop(ctx);

            for s in sends {
                let hops = self.topo.distance(node, s.to);
                self.stats[node].msgs_sent += 1;
                self.stats[node].bytes_sent += s.bytes as u64;
                self.net.msgs += 1;
                self.net.bytes += s.bytes as u64;
                self.net.hops += hops as u64;
                self.seq += 1;
                if self.contention && hops > 0 {
                    // Inject after the fixed startup cost; the router
                    // takes it from there, link by link.
                    self.queue.push(std::cmp::Reverse(Event {
                        time: start + s.at_offset + self.latency.alpha_us,
                        seq: self.seq,
                        node,
                        kind: EventKind::Forward {
                            from: node,
                            final_to: s.to,
                            msg: s.msg,
                            bytes: s.bytes,
                        },
                    }));
                } else {
                    let arrive = start + s.at_offset + self.latency.wire_latency(s.bytes, hops);
                    self.queue.push(std::cmp::Reverse(Event {
                        time: arrive,
                        seq: self.seq,
                        node: s.to,
                        kind: EventKind::Message {
                            from: node,
                            msg: s.msg,
                        },
                    }));
                }
            }
            for t in timers {
                self.seq += 1;
                self.queue.push(std::cmp::Reverse(Event {
                    time: start + t.fire_offset,
                    seq: self.seq,
                    node,
                    kind: EventKind::Timer {
                        id: t.id,
                        tag: t.tag,
                    },
                }));
            }
            self.cancelled.extend(cancels);
            if halt {
                halted = true;
            }
        }

        let stats = RunStats {
            end_time: self.last_activity,
            nodes: self.stats,
            net: self.net,
            events: self.events_processed,
            timelines: self.timelines,
        };
        (self.programs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_topology::Mesh2D;

    /// Ping-pong program: node 0 sends a counter to node 1, which
    /// bounces it back, `ROUNDS` times.
    struct PingPong {
        seen: Vec<u32>,
    }

    const ROUNDS: u32 = 5;

    impl Program for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1, 0, 8);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.seen.push(msg);
            if msg + 1 < ROUNDS * 2 {
                ctx.send(from, msg + 1, 8);
            }
        }
    }

    fn mesh(n: usize) -> Arc<dyn Topology> {
        Arc::new(Mesh2D::near_square(n))
    }

    #[test]
    fn ping_pong_alternates() {
        let eng = Engine::new(mesh(2), LatencyModel::paragon(), 42, |_| PingPong {
            seen: vec![],
        });
        let (progs, stats) = eng.run();
        assert_eq!(progs[1].seen, vec![0, 2, 4, 6, 8]);
        assert_eq!(progs[0].seen, vec![1, 3, 5, 7, 9]);
        assert_eq!(stats.net.msgs, 10);
        // 2 nodes adjacent in a 2x1 mesh: every message is 1 hop.
        assert_eq!(stats.net.hops, 10);
        assert!(stats.end_time > 0);
    }

    /// A node that computes in its start handler; arrival of a message
    /// mid-compute must be deferred until the compute finishes.
    struct Busy {
        got_at: Option<Time>,
    }

    impl Program for Busy {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == 1 {
                ctx.compute(10_000, WorkKind::User);
            } else {
                ctx.send(1, (), 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
            self.got_at = Some(ctx.now());
        }
    }

    #[test]
    fn busy_node_defers_messages() {
        let lat = LatencyModel {
            alpha_us: 5,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 0,
            recv_cpu_us: 0,
        };
        let eng = Engine::new(mesh(2), lat, 1, |_| Busy { got_at: None });
        let (progs, stats) = eng.run();
        // Message arrives at t=5 but node 1 is busy until t=10_000.
        assert_eq!(progs[1].got_at, Some(10_000));
        assert_eq!(stats.nodes[1].user_us, 10_000);
        assert_eq!(stats.end_time, 10_000);
    }

    /// Timers fire in order, and cancellation suppresses delivery.
    struct Timers {
        fired: Vec<u64>,
    }

    impl Program for Timers {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == 0 {
                ctx.set_timer(30, 3);
                ctx.set_timer(10, 1);
                let victim = ctx.set_timer(20, 2);
                ctx.cancel_timer(victim);
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, ()>, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timer_order_and_cancellation() {
        let eng = Engine::new(mesh(1), LatencyModel::ideal(), 7, |_| Timers {
            fired: vec![],
        });
        let (progs, _) = eng.run();
        assert_eq!(progs[0].fired, vec![1, 3]);
    }

    /// Halting stops the run even with events pending.
    struct Halter;

    impl Program for Halter {
        type Msg = u8;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            if ctx.me() == 0 {
                ctx.set_timer(1_000_000, 0); // would run forever-ish
                ctx.halt();
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, u8>, _from: NodeId, _msg: u8) {}
    }

    #[test]
    fn halt_stops_simulation() {
        let eng = Engine::new(mesh(4), LatencyModel::paragon(), 3, |_| Halter);
        let (_, stats) = eng.run();
        assert_eq!(stats.end_time, 0);
        assert!(stats.events <= 4);
    }

    /// Determinism: identical seeds give identical runs.
    struct RandomSpray {
        log: Vec<(NodeId, u64)>,
        hops_left: u32,
    }

    impl Program for RandomSpray {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == 0 {
                let n = ctx.num_nodes();
                let v = rand::RngExt::random_range(ctx.rng(), 0..1000u64);
                let to = rand::RngExt::random_range(ctx.rng(), 0..n);
                ctx.send(to, v, 8);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.log.push((from, msg));
            if self.hops_left > 0 {
                self.hops_left -= 1;
                let n = ctx.num_nodes();
                let to = rand::RngExt::random_range(ctx.rng(), 0..n);
                ctx.send(to, msg + 1, 8);
            }
        }
    }

    fn spray_run(seed: u64) -> Vec<Vec<(NodeId, u64)>> {
        let eng = Engine::new(mesh(9), LatencyModel::paragon(), seed, |_| RandomSpray {
            log: vec![],
            hops_left: 8,
        });
        let (progs, _) = eng.run();
        progs.into_iter().map(|p| p.log).collect()
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(spray_run(99), spray_run(99));
    }

    #[test]
    fn different_seeds_diverge() {
        // Not guaranteed in principle, but overwhelmingly likely; if
        // this ever flakes the RNG plumbing is broken anyway.
        assert_ne!(spray_run(1), spray_run(2));
    }

    #[test]
    fn send_cpu_charged_as_overhead() {
        let lat = LatencyModel {
            alpha_us: 0,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 7,
            recv_cpu_us: 11,
        };
        let eng = Engine::new(mesh(2), lat, 1, |_| PingPong { seen: vec![] });
        let (_, stats) = eng.run();
        // Node 0: 1 send in on_start + sends in on_message replies.
        assert!(stats.nodes[0].overhead_us >= 7);
        assert!(stats.nodes[1].overhead_us >= 11);
    }
}
