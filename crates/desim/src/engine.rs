//! The event-driven simulation engine.
//!
//! # Hot-path design
//!
//! The engine is performance-tuned under one invariant: **no
//! optimisation may change a simulated result**. Virtual times, stats
//! and outcomes are bit-for-bit identical to the straightforward
//! implementation (pinned by `crates/bench/tests/golden.rs`). The
//! load-bearing pieces:
//!
//! * **Engine-owned effect buffers.** A handler's sends, timers and
//!   cancels are buffered in vectors owned by the engine and lent to
//!   [`Ctx`] for the duration of the call, so the steady state
//!   allocates nothing per event.
//! * **Per-node deferral lanes.** An event arriving at a busy node is
//!   parked in that node's lane (a min-heap on sequence number)
//!   instead of being re-pushed into the global heap once per
//!   deferral. A single *wake marker* per node — carrying the lane
//!   minimum's sequence number so global (time, seq) interleaving is
//!   exactly what the re-push scheme produced — is pushed at the
//!   node's free time. Stale markers (the lane minimum changed, or
//!   the node was re-busied first) are lazily discarded on pop.
//! * **Threshold routing.** At or below [`TABLE_THRESHOLD`] nodes,
//!   hop distances are materialised into a flat `n × n` table at
//!   construction (next-hop routes likewise when contention is
//!   enabled), eliminating per-send virtual calls into
//!   `dyn Topology`. Above the threshold, topologies advertising
//!   [`Topology::computed_routes`] are routed on the fly from their
//!   closed forms instead — the tables would be terabytes at a
//!   million nodes. Both paths return identical values (the topology
//!   crate cross-validates closed forms against BFS), so the switch
//!   is invisible to simulated results.
//! * **Struct-of-arrays state.** Global event-queue state
//!   ([`EventCore`]: heap, sequence counter, timer identity,
//!   cancellations) and dense per-node vectors ([`NodeCore`]:
//!   programs, ready times, stats, RNGs, deferral lanes, wake
//!   markers) are grouped dslab-style; every per-node entry is O(1)
//!   bytes, so an idle node costs a few hundred bytes and a
//!   million-node machine stays in the hundreds of megabytes.
//! * **Buffered broadcasts.** `send_all`/`signal_all` buffer one
//!   request holding one payload; the fan-out to `N - 1` point-to-point
//!   messages happens at apply time (clone per recipient except the
//!   last, which takes the original), instead of materialising `N - 1`
//!   payload copies in the effect buffer up front.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rips_topology::{NodeId, Topology};

use crate::{LatencyModel, MemStats, NetStats, NodeStats, RunStats, Time, WorkKind};

/// Handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Behaviour of one simulated node (the SPMD "code image").
///
/// Handlers run to completion with sequential-node semantics: while a
/// handler's consumed compute time elapses, further events for the node
/// wait. All interaction with the machine goes through [`Ctx`].
pub trait Program {
    /// Message payload exchanged between nodes.
    type Msg;

    /// Called once per node at time 0, in node-id order.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message arrives (after the receive CPU cost has
    /// been charged as overhead).
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// A buffered communication effect, applied when the handler returns.
/// Broadcasts stay folded (one payload) until apply time.
enum Effect<M> {
    Send {
        to: NodeId,
        msg: M,
        bytes: usize,
        /// CPU consumed by the handler before this send was issued;
        /// the message departs at `handler_start + at_offset`.
        at_offset: Time,
    },
    /// One payload bound for every other node. `base_offset` is the
    /// CPU consumed before the broadcast was issued; recipient `k`
    /// (0-based, node-id order, self skipped) departs at
    /// `base_offset + (k + 1) · send_cpu` for a software broadcast and
    /// at `base_offset` for a hardware signal.
    Broadcast {
        msg: M,
        bytes: usize,
        base_offset: Time,
        signal: bool,
    },
}

struct TimerReq {
    id: u64,
    tag: u64,
    fire_offset: Time,
}

/// Node-side view of the machine during a handler invocation.
///
/// Effects (sends, timers, compute) are buffered and applied by the
/// engine when the handler returns, preserving deterministic ordering.
/// The buffers are engine-owned and lent to the context, so a handler
/// invocation performs no allocation in the steady state.
pub struct Ctx<'a, M> {
    now: Time,
    me: NodeId,
    n: usize,
    consumed_user: Time,
    consumed_overhead: Time,
    effects: &'a mut Vec<Effect<M>>,
    timers: &'a mut Vec<TimerReq>,
    cancels: &'a mut Vec<u64>,
    halt: bool,
    send_cpu_us: Time,
    next_timer_id: &'a mut u64,
    rng: &'a mut SmallRng,
}

impl<'a, M> Ctx<'a, M> {
    /// Virtual time at which the current handler began.
    pub fn now(&self) -> Time {
        self.now + self.consumed_user + self.consumed_overhead
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the machine.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Deterministic per-node random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Consume `dur` µs of CPU, classified as `kind`.
    pub fn compute(&mut self, dur: Time, kind: WorkKind) {
        match kind {
            WorkKind::User => self.consumed_user += dur,
            WorkKind::Overhead => self.consumed_overhead += dur,
        }
    }

    /// Send `msg` (`bytes` of payload) to node `to`. Charges the
    /// sender's CPU send cost as overhead; the message departs at the
    /// current intra-handler time and arrives after the wire latency.
    ///
    /// Sending to self is allowed and delivers after `alpha` only.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: usize) {
        assert!(to < self.n, "send to nonexistent node {to}");
        self.consumed_overhead += self.send_cpu_us;
        self.effects.push(Effect::Send {
            to,
            msg,
            bytes,
            at_offset: self.consumed_user + self.consumed_overhead,
        });
    }

    /// Send a copy of `msg` to every other node (naive broadcast:
    /// `N - 1` point-to-point messages, each paying full cost). The
    /// payload is buffered once; copies are made only as the fan-out
    /// is applied.
    pub fn send_all(&mut self, msg: M, bytes: usize)
    where
        M: Clone,
    {
        let base_offset = self.consumed_user + self.consumed_overhead;
        self.consumed_overhead += self.send_cpu_us * (self.n.saturating_sub(1)) as Time;
        self.effects.push(Effect::Broadcast {
            msg,
            bytes,
            base_offset,
            signal: false,
        });
    }

    /// Hardware-assisted signal: delivers `msg` to `to` paying only the
    /// network's fixed latency — no sender CPU, no payload. Models
    /// dedicated synchronisation hardware such as the Cray T3D's
    /// "eureka" or-barrier (paper §2).
    pub fn signal(&mut self, to: NodeId, msg: M) {
        assert!(to < self.n, "signal to nonexistent node {to}");
        self.effects.push(Effect::Send {
            to,
            msg,
            bytes: 0,
            at_offset: self.consumed_user + self.consumed_overhead,
        });
    }

    /// Broadcast a hardware signal to every other node (see
    /// [`Ctx::signal`]).
    pub fn signal_all(&mut self, msg: M)
    where
        M: Clone,
    {
        self.effects.push(Effect::Broadcast {
            msg,
            bytes: 0,
            base_offset: self.consumed_user + self.consumed_overhead,
            signal: true,
        });
    }

    /// Arrange for [`Program::on_timer`] to be called with `tag` after
    /// `delay` µs of virtual time (measured from the current
    /// intra-handler time).
    pub fn set_timer(&mut self, delay: Time, tag: u64) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.timers.push(TimerReq {
            id,
            tag,
            fire_offset: self.consumed_user + self.consumed_overhead + delay,
        });
        TimerId(id)
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancels.push(id.0);
    }

    /// Stop the whole simulation once this handler returns. Used by a
    /// node that detects global termination.
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

enum EventKind<M> {
    Start,
    Message {
        from: NodeId,
        msg: M,
    },
    Timer {
        id: u64,
        tag: u64,
    },
    /// Contention mode: a message in flight, currently held at the
    /// event's node, still travelling toward `final_to`. Processed by
    /// the engine's router, not by the node's program (and therefore
    /// never deferred by node busy time).
    Forward {
        from: NodeId,
        final_to: NodeId,
        msg: M,
        bytes: usize,
    },
    /// Deferral-lane wake marker: when this pops (at the node's free
    /// time, carrying the lane minimum's original sequence number),
    /// the node runs the head of its deferral lane. Stale markers are
    /// discarded via the per-node armed (time, seq) pair.
    Wake,
}

struct Event<M> {
    time: Time,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via Reverse: order by (time, seq).
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// An event parked at a busy node, keyed by its original sequence
/// number (deferred same-time deliveries replay in seq order).
struct LaneEvent<M> {
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for LaneEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<M> Eq for LaneEvent<M> {}
impl<M> PartialOrd for LaneEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for LaneEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.seq.cmp(&other.seq)
    }
}

/// `armed[node]` sentinel: no wake marker outstanding.
const UNARMED: (Time, u64) = (0, u64::MAX);

/// Node count at or below which the engine materialises flat `n × n`
/// routing tables. Below this, the tables (32 MB of distances at the
/// threshold) measurably beat virtual dispatch into `dyn Topology`;
/// above it they dwarf every other structure — 2 TB of distances and
/// 4 TB of next hops at a million nodes — so topologies advertising
/// [`Topology::computed_routes`] are routed on the fly instead.
pub const TABLE_THRESHOLD: usize = 4096;

/// The routing seam: every hop-distance or next-hop query goes through
/// here, backed either by flat tables (small machines, or topologies
/// without closed-form routes) or by the topology's own O(1)/O(log n)
/// computations. Both backends return identical values — the topology
/// crate's invariant tests cross-validate the closed forms against BFS
/// — so which one is active never shows in simulated results.
struct Routing {
    topo: Arc<dyn Topology>,
    n: usize,
    /// `true` when the flat tables are in use.
    tabled: bool,
    /// Flat `n × n` hop-distance table (`dist[from * n + to]`); empty
    /// in computed mode.
    dist: Vec<u16>,
    /// Flat `n × n` next-hop table (`u32::MAX` on the diagonal), built
    /// lazily when contention is first enabled; empty in computed mode.
    next_hop: Vec<u32>,
}

impl Routing {
    fn new(topo: Arc<dyn Topology>) -> Self {
        let n = topo.len();
        let tabled = n <= TABLE_THRESHOLD || !topo.computed_routes();
        let mut dist = Vec::new();
        if tabled {
            dist = vec![0u16; n * n];
            for from in 0..n {
                for to in 0..n {
                    let d = topo.distance(from, to);
                    // Release-mode guard (was a debug_assert): a custom
                    // topology without computed routes can exceed the
                    // u16 diameter ceiling here, and storing a silently
                    // truncated distance would corrupt every latency in
                    // the run. (Provided topologies can't trip this:
                    // below TABLE_THRESHOLD the diameter is < n ≤ 4096,
                    // and above it they all advertise computed routes.)
                    assert!(
                        d <= u16::MAX as usize,
                        "hop distance {d} overflows the u16 routing table; \
                         implement Topology::computed_routes for this topology"
                    );
                    dist[from * n + to] = d as u16;
                }
            }
        }
        Routing {
            topo,
            n,
            tabled,
            dist,
            next_hop: Vec::new(),
        }
    }

    /// Hop distance `from → to`.
    #[inline]
    fn hops(&self, from: NodeId, to: NodeId) -> usize {
        if self.tabled {
            self.dist[from * self.n + to] as usize
        } else {
            self.topo.distance(from, to)
        }
    }

    /// The next hop on the deterministic route `at → to`. Callers
    /// guarantee `at != to`.
    #[inline]
    fn hop_toward(&self, at: NodeId, to: NodeId) -> NodeId {
        if self.tabled {
            let hop = self.next_hop[at * self.n + to];
            debug_assert!(hop != u32::MAX, "forward event at destination");
            hop as NodeId
        } else {
            self.topo
                .route_next_hop(at, to)
                // rips-lint: allow(L003, the topology is connected and the router only asks with at != to, so a route exists)
                .expect("no route between distinct nodes")
        }
    }

    /// Materialises the next-hop table (contention mode, tabled only).
    fn build_next_hop_table(&mut self) {
        if !self.tabled || !self.next_hop.is_empty() {
            return;
        }
        let n = self.n;
        self.next_hop = vec![u32::MAX; n * n];
        for at in 0..n {
            for to in 0..n {
                if at != to {
                    let hop = self
                        .topo
                        .route_next_hop(at, to)
                        // rips-lint: allow(L003, the topology is connected; a route exists between any two distinct nodes)
                        .expect("no route between distinct nodes");
                    self.next_hop[at * n + to] = hop as u32;
                }
            }
        }
    }

    /// Bytes held in materialised tables (0 in computed mode).
    fn table_bytes(&self) -> u64 {
        (self.dist.len() * std::mem::size_of::<u16>()
            + self.next_hop.len() * std::mem::size_of::<u32>()) as u64
    }
}

/// The global event core, grouped after the dslab simulator idiom
/// (SNIPPETS.md): the clock-ordered heap, the deterministic
/// interleaving counter, timer identity, and the cancellation set
/// travel together, separate from per-node state.
struct EventCore<M> {
    queue: BinaryHeap<std::cmp::Reverse<Event<M>>>,
    /// Global (time, seq) interleaving tiebreaker; also the identity
    /// replayed by deferral-lane wake markers.
    seq: u64,
    /// Events dispatched so far (the run's event count).
    processed: u64,
    next_timer_id: u64,
    cancelled: HashSet<u64>,
}

impl<M> EventCore<M> {
    /// Pushes an event stamped with the next sequence number.
    #[inline]
    fn push_next(&mut self, time: Time, node: NodeId, kind: EventKind<M>) {
        self.seq += 1;
        self.queue.push(std::cmp::Reverse(Event {
            time,
            seq: self.seq,
            node,
            kind,
        }));
    }

    /// Pushes an event replaying an explicit sequence number (wake
    /// markers reuse the parked event's original seq so global
    /// interleaving matches the historical re-push scheme exactly).
    #[inline]
    fn push_at(&mut self, time: Time, seq: u64, node: NodeId, kind: EventKind<M>) {
        self.queue.push(std::cmp::Reverse(Event {
            time,
            seq,
            node,
            kind,
        }));
    }
}

/// Per-node engine state in struct-of-arrays layout: dense parallel
/// vectors indexed by node id. Every entry is O(1) bytes — empty heaps
/// and unarmed markers don't allocate — so an idle node costs a fixed
/// few hundred bytes and the layout scales linearly to 10⁶ nodes.
struct NodeCore<P: Program> {
    programs: Vec<P>,
    ready_at: Vec<Time>,
    stats: Vec<NodeStats>,
    rngs: Vec<SmallRng>,
    /// Per-node deferral lanes: events that arrived while the node was
    /// busy, ordered by original sequence number.
    lanes: Vec<BinaryHeap<std::cmp::Reverse<LaneEvent<P::Msg>>>>,
    /// The (time, seq) of each node's valid wake marker, or [`UNARMED`].
    armed: Vec<(Time, u64)>,
}

impl<P: Program> NodeCore<P> {
    fn len(&self) -> usize {
        self.programs.len()
    }

    /// Fixed bytes per node across the parallel vectors (the modelled
    /// idle-node cost; lane/heap contents are counted via peak depth).
    fn fixed_bytes_per_node() -> u64 {
        (std::mem::size_of::<P>()
            + std::mem::size_of::<Time>()
            + std::mem::size_of::<NodeStats>()
            + std::mem::size_of::<SmallRng>()
            + std::mem::size_of::<BinaryHeap<std::cmp::Reverse<LaneEvent<P::Msg>>>>()
            + std::mem::size_of::<(Time, u64)>()) as u64
    }
}

/// The simulation engine: owns the nodes, the event queue, the clock,
/// and all accounting.
pub struct Engine<P: Program> {
    latency: LatencyModel,
    /// Per-node state, struct-of-arrays.
    nodes: NodeCore<P>,
    /// Global event-queue state.
    core: EventCore<P::Msg>,
    /// Table-or-computed routing seam.
    routing: Routing,
    net: NetStats,
    last_activity: Time,
    timelines: Option<Vec<Vec<crate::BusySpan>>>,
    /// Store-and-forward link contention: directed links serialize
    /// transmissions. Off by default (contention-free network).
    contention: bool,
    /// Dense per-directed-link free times (`link_free[at * n + next]`);
    /// built when contention is enabled. Contention is inherently
    /// per-link O(n²) state and is not supported past table scale.
    link_free: Vec<Time>,
    /// Total events currently parked across all lanes.
    parked: u64,
    /// High-water mark of outstanding events (global heap + lanes).
    peak_depth: u64,
    /// Trace handle; disabled by default ([`Engine::set_tracer`]).
    tracer: rips_trace::Tracer,
    /// Metrics handle; disabled by default ([`Engine::set_meter`]).
    meter: rips_trace::Meter,
    /// Reusable effect buffers lent to [`Ctx`] per handler call.
    effects_buf: Vec<Effect<P::Msg>>,
    timer_buf: Vec<TimerReq>,
    cancel_buf: Vec<u64>,
    /// Safety valve against runaway protocols; `run` panics past this.
    pub max_events: u64,
}

impl<P: Program> Engine<P> {
    /// Builds an engine over `topo` with one program per node
    /// (`make(node_id)`), deterministic under `seed`.
    pub fn new(
        topo: Arc<dyn Topology>,
        latency: LatencyModel,
        seed: u64,
        mut make: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = topo.len();
        assert!(n > 0, "machine must have at least one node");
        let programs: Vec<P> = (0..n).map(&mut make).collect();
        let rngs = (0..n)
            .map(|i| SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64))
            .collect();
        let mut queue = BinaryHeap::with_capacity((n * 4).min(1 << 20));
        for node in 0..n {
            queue.push(std::cmp::Reverse(Event {
                time: 0,
                seq: node as u64,
                node,
                kind: EventKind::Start,
            }));
        }
        Engine {
            latency,
            nodes: NodeCore {
                programs,
                ready_at: vec![0; n],
                stats: vec![NodeStats::default(); n],
                rngs,
                lanes: (0..n).map(|_| BinaryHeap::new()).collect(),
                armed: vec![UNARMED; n],
            },
            core: EventCore {
                queue,
                seq: n as u64,
                processed: 0,
                next_timer_id: 0,
                cancelled: HashSet::new(),
            },
            routing: Routing::new(topo),
            net: NetStats::default(),
            last_activity: 0,
            timelines: None,
            contention: false,
            link_free: Vec::new(),
            parked: 0,
            peak_depth: 0,
            tracer: rips_trace::Tracer::off(),
            meter: rips_trace::Meter::off(),
            effects_buf: Vec::new(),
            timer_buf: Vec::new(),
            cancel_buf: Vec::new(),
            max_events: 500_000_000,
        }
    }

    /// Enables store-and-forward link contention: each directed link
    /// transmits one message at a time, `per_hop_us + bytes·per_byte`
    /// per hop, so bursts toward the same region queue up. Off by
    /// default (the contention-free model charges the route's total
    /// latency up front).
    pub fn enable_contention(&mut self, on: bool) {
        self.contention = on;
        let n = self.nodes.len();
        if on && self.link_free.is_empty() {
            self.routing.build_next_hop_table();
            self.link_free = vec![0; n * n];
        }
    }

    /// Attaches a trace handle. Every outgoing message is then emitted
    /// as a [`rips_trace::TraceEvent::MsgSend`] instant (stamped at its
    /// departure time). With the default disabled tracer the hot path
    /// pays one never-taken branch per send.
    pub fn set_tracer(&mut self, tracer: rips_trace::Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a metrics handle. The event loop then counts every
    /// processed event (`rips_sim_events`), timer dispatch
    /// (`rips_timer_fires`), and outgoing message (`rips_msgs_sent`)
    /// into the per-node shards of the installed registry. With the
    /// default disabled meter each tap is one never-taken branch.
    pub fn set_meter(&mut self, meter: rips_trace::Meter) {
        self.meter = meter;
    }

    /// Enables per-node busy-span recording (off by default: one span
    /// per handler invocation costs memory on long runs). Spans within
    /// a handler are approximated as overhead-then-user, matching the
    /// dispatch-then-execute structure of the schedulers built on this
    /// engine.
    pub fn record_timeline(&mut self, on: bool) {
        self.timelines = if on {
            Some(vec![Vec::new(); self.nodes.len()])
        } else {
            None
        };
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the machine has no nodes (constructor forbids this).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 0
    }

    /// The interconnect.
    pub fn topology(&self) -> &Arc<dyn Topology> {
        &self.routing.topo
    }

    /// `true` when this engine materialised flat routing tables (small
    /// machine or no closed-form routes); `false` when it routes on the
    /// fly and holds no O(n²) state.
    pub fn routing_tabled(&self) -> bool {
        self.routing.tabled
    }

    /// Immutable access to a node's program (post-run inspection).
    pub fn program(&self, node: NodeId) -> &P {
        &self.nodes.programs[node]
    }

    /// Advances a contention-mode message one hop: waits for the
    /// outgoing link, transmits (store-and-forward), then either hands
    /// the message to the next router or delivers it.
    fn route_hop(
        &mut self,
        now: Time,
        at: NodeId,
        from: NodeId,
        final_to: NodeId,
        msg: P::Msg,
        bytes: usize,
    ) {
        let n = self.nodes.len();
        let next = self.routing.hop_toward(at, final_to);
        let link = at * n + next;
        let transmit = self.latency.per_hop_us + (bytes as Time * self.latency.per_byte_ns) / 1000;
        let done = self.link_free[link].max(now) + transmit.max(1);
        self.link_free[link] = done;
        let kind = if next == final_to {
            EventKind::Message { from, msg }
        } else {
            EventKind::Forward {
                from,
                final_to,
                msg,
                bytes,
            }
        };
        self.core.push_next(done, next, kind);
    }

    /// Registers one outgoing message: accounting, then either hand it
    /// to the router (contention) or schedule the delivery directly.
    fn push_send(
        &mut self,
        from: NodeId,
        start: Time,
        to: NodeId,
        msg: P::Msg,
        bytes: usize,
        at_offset: Time,
    ) {
        let hops = self.routing.hops(from, to);
        self.nodes.stats[from].msgs_sent += 1;
        self.nodes.stats[from].bytes_sent += bytes as u64;
        self.net.msgs += 1;
        self.net.bytes += bytes as u64;
        self.net.hops += hops as u64;
        self.meter
            .add_at(from, rips_trace::metrics_rt::Counter::MsgsSent, 1);
        self.tracer.emit(start + at_offset, from, || {
            rips_trace::TraceEvent::MsgSend {
                to,
                bytes: bytes as u64,
                hops: hops as u32,
            }
        });
        if self.contention && hops > 0 {
            // Inject after the fixed startup cost; the router takes it
            // from there, link by link.
            self.core.push_next(
                start + at_offset + self.latency.alpha_us,
                from,
                EventKind::Forward {
                    from,
                    final_to: to,
                    msg,
                    bytes,
                },
            );
        } else {
            let arrive = start + at_offset + self.latency.wire_latency(bytes, hops);
            self.core
                .push_next(arrive, to, EventKind::Message { from, msg });
        }
    }

    /// (Re)arms `node`'s wake marker to match its lane head, pushing a
    /// marker event at the node's free time. A still-valid marker at
    /// the same (time, seq) is left alone; anything else outstanding
    /// becomes stale and is discarded when popped.
    fn arm(&mut self, node: NodeId) {
        match self.nodes.lanes[node].peek() {
            Some(std::cmp::Reverse(head)) => {
                let mark = (self.nodes.ready_at[node], head.seq);
                if self.nodes.armed[node] != mark {
                    self.nodes.armed[node] = mark;
                    self.core.push_at(mark.0, mark.1, node, EventKind::Wake);
                }
            }
            None => self.nodes.armed[node] = UNARMED,
        }
    }

    /// Runs one handler invocation and applies its buffered effects.
    /// Returns `true` if the handler requested a halt.
    fn dispatch(&mut self, start: Time, node: NodeId, kind: EventKind<P::Msg>) -> bool
    where
        P::Msg: Clone,
    {
        self.core.processed += 1;
        assert!(
            self.core.processed <= self.max_events,
            "event limit exceeded: protocol livelock?"
        );
        self.meter
            .add_at(node, rips_trace::metrics_rt::Counter::SimEvents, 1);
        if matches!(kind, EventKind::Timer { .. }) {
            self.meter
                .add_at(node, rips_trace::metrics_rt::Counter::TimerFires, 1);
        }

        let mut ctx = Ctx {
            now: start,
            me: node,
            n: self.nodes.programs.len(),
            consumed_user: 0,
            consumed_overhead: 0,
            effects: &mut self.effects_buf,
            timers: &mut self.timer_buf,
            cancels: &mut self.cancel_buf,
            halt: false,
            send_cpu_us: self.latency.send_cpu_us,
            next_timer_id: &mut self.core.next_timer_id,
            rng: &mut self.nodes.rngs[node],
        };
        match kind {
            EventKind::Start => self.nodes.programs[node].on_start(&mut ctx),
            EventKind::Message { from, msg } => {
                ctx.consumed_overhead += self.latency.recv_cpu_us;
                self.nodes.programs[node].on_message(&mut ctx, from, msg)
            }
            EventKind::Timer { tag, .. } => self.nodes.programs[node].on_timer(&mut ctx, tag),
            EventKind::Forward { .. } | EventKind::Wake => {
                // rips-lint: allow(L003, routing and wake markers are intercepted by the event loop before dispatch)
                unreachable!("router/marker events never dispatch to a program")
            }
        }

        let consumed_user = ctx.consumed_user;
        let consumed_overhead = ctx.consumed_overhead;
        let consumed = consumed_user + consumed_overhead;
        let halt = ctx.halt;

        self.nodes.stats[node].user_us += consumed_user;
        self.nodes.stats[node].overhead_us += consumed_overhead;
        self.nodes.ready_at[node] = start + consumed;
        self.last_activity = self.last_activity.max(start + consumed);
        if let Some(timelines) = &mut self.timelines {
            if consumed_overhead > 0 {
                timelines[node].push(crate::BusySpan {
                    start,
                    end: start + consumed_overhead,
                    kind: WorkKind::Overhead,
                });
            }
            if consumed_user > 0 {
                timelines[node].push(crate::BusySpan {
                    start: start + consumed_overhead,
                    end: start + consumed,
                    kind: WorkKind::User,
                });
            }
        }

        // Apply buffered effects. The buffers are swapped out so the
        // engine can be re-borrowed, then swapped back (capacity kept).
        let mut effects = std::mem::take(&mut self.effects_buf);
        for effect in effects.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    bytes,
                    at_offset,
                } => self.push_send(node, start, to, msg, bytes, at_offset),
                Effect::Broadcast {
                    msg,
                    bytes,
                    base_offset,
                    signal,
                } => {
                    let n = self.nodes.len();
                    let step = if signal { 0 } else { self.latency.send_cpu_us };
                    let last = if node == n - 1 {
                        n.wrapping_sub(2)
                    } else {
                        n - 1
                    };
                    let mut msg = Some(msg);
                    let mut k: Time = 0;
                    for to in 0..n {
                        if to == node {
                            continue;
                        }
                        k += 1;
                        let m = if to == last {
                            // rips-lint: allow(L003, the last recipient takes the payload; earlier iterations only clone)
                            msg.take().expect("broadcast payload consumed early")
                        } else {
                            // rips-lint: allow(L003, every non-final recipient clones; the payload is still present)
                            msg.as_ref().expect("broadcast payload missing").clone()
                        };
                        self.push_send(node, start, to, m, bytes, base_offset + k * step);
                    }
                }
            }
        }
        self.effects_buf = effects;

        let mut timers = std::mem::take(&mut self.timer_buf);
        for t in timers.drain(..) {
            self.core.push_next(
                start + t.fire_offset,
                node,
                EventKind::Timer {
                    id: t.id,
                    tag: t.tag,
                },
            );
        }
        self.timer_buf = timers;

        if !self.cancel_buf.is_empty() {
            let cancelled = &mut self.core.cancelled;
            cancelled.extend(self.cancel_buf.drain(..));
        }
        halt
    }

    /// Runs until the event queue drains or a handler calls
    /// [`Ctx::halt`]. Returns the accounting summary.
    ///
    /// # Panics
    /// Panics if more than `max_events` events are processed (protocol
    /// livelock guard).
    pub fn run(mut self) -> (Vec<P>, RunStats)
    where
        P::Msg: Clone,
    {
        'sim: while let Some(std::cmp::Reverse(ev)) = self.core.queue.pop() {
            let depth = self.core.queue.len() as u64 + self.parked + 1;
            if depth > self.peak_depth {
                self.peak_depth = depth;
            }
            let node = ev.node;
            match ev.kind {
                // Router events are handled by the interconnect, not
                // the node's CPU: no deferral, no program involvement.
                EventKind::Forward {
                    from,
                    final_to,
                    msg,
                    bytes,
                } => {
                    self.core.processed += 1;
                    self.route_hop(ev.time, node, from, final_to, msg, bytes);
                }
                EventKind::Wake => {
                    if self.nodes.armed[node] != (ev.time, ev.seq) {
                        continue; // stale marker
                    }
                    let head = self.nodes.lanes[node]
                        .pop()
                        // rips-lint: allow(L003, a node is armed only when its lane is non-empty; the pop cannot fail)
                        .expect("armed node with empty lane")
                        .0;
                    debug_assert_eq!(head.seq, ev.seq);
                    self.parked -= 1;
                    self.nodes.armed[node] = UNARMED;
                    if let EventKind::Timer { id, .. } = &head.kind {
                        if self.core.cancelled.remove(id) {
                            self.arm(node);
                            continue;
                        }
                    }
                    let halt = self.dispatch(ev.time, node, head.kind);
                    self.arm(node);
                    if halt {
                        break 'sim;
                    }
                }
                kind => {
                    // Respect sequential-node semantics: an event for a
                    // busy node parks in the node's deferral lane; the
                    // wake marker replays it (in original seq order) at
                    // the time the re-push scheme would have.
                    if self.nodes.ready_at[node] > ev.time {
                        self.nodes.lanes[node]
                            .push(std::cmp::Reverse(LaneEvent { seq: ev.seq, kind }));
                        self.parked += 1;
                        if ev.seq < self.nodes.armed[node].1 {
                            self.arm(node);
                        }
                        continue;
                    }
                    if let EventKind::Timer { id, .. } = &kind {
                        if self.core.cancelled.remove(id) {
                            continue;
                        }
                    }
                    let halt = self.dispatch(ev.time, node, kind);
                    self.arm(node);
                    if halt {
                        break 'sim;
                    }
                }
            }
        }

        let mem = MemStats {
            routing_table_bytes: self.routing.table_bytes(),
            link_state_bytes: (self.link_free.len() * std::mem::size_of::<Time>()) as u64,
            node_state_bytes: self.nodes.len() as u64 * NodeCore::<P>::fixed_bytes_per_node(),
            peak_event_bytes: self.peak_depth * std::mem::size_of::<Event<P::Msg>>() as u64,
        };
        let stats = RunStats {
            end_time: self.last_activity,
            nodes: self.nodes.stats,
            net: self.net,
            events: self.core.processed,
            peak_queue_depth: self.peak_depth,
            mem,
            timelines: self.timelines,
        };
        (self.nodes.programs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_topology::Mesh2D;

    /// Ping-pong program: node 0 sends a counter to node 1, which
    /// bounces it back, `ROUNDS` times.
    struct PingPong {
        seen: Vec<u32>,
    }

    const ROUNDS: u32 = 5;

    impl Program for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1, 0, 8);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.seen.push(msg);
            if msg + 1 < ROUNDS * 2 {
                ctx.send(from, msg + 1, 8);
            }
        }
    }

    fn mesh(n: usize) -> Arc<dyn Topology> {
        Arc::new(Mesh2D::near_square(n))
    }

    #[test]
    fn ping_pong_alternates() {
        let eng = Engine::new(mesh(2), LatencyModel::paragon(), 42, |_| PingPong {
            seen: vec![],
        });
        let (progs, stats) = eng.run();
        assert_eq!(progs[1].seen, vec![0, 2, 4, 6, 8]);
        assert_eq!(progs[0].seen, vec![1, 3, 5, 7, 9]);
        assert_eq!(stats.net.msgs, 10);
        // 2 nodes adjacent in a 2x1 mesh: every message is 1 hop.
        assert_eq!(stats.net.hops, 10);
        assert!(stats.end_time > 0);
        assert!(stats.peak_queue_depth >= 1);
    }

    /// A node that computes in its start handler; arrival of a message
    /// mid-compute must be deferred until the compute finishes.
    struct Busy {
        got_at: Option<Time>,
    }

    impl Program for Busy {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == 1 {
                ctx.compute(10_000, WorkKind::User);
            } else {
                ctx.send(1, (), 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
            self.got_at = Some(ctx.now());
        }
    }

    #[test]
    fn busy_node_defers_messages() {
        let lat = LatencyModel {
            alpha_us: 5,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 0,
            recv_cpu_us: 0,
        };
        let eng = Engine::new(mesh(2), lat, 1, |_| Busy { got_at: None });
        let (progs, stats) = eng.run();
        // Message arrives at t=5 but node 1 is busy until t=10_000.
        assert_eq!(progs[1].got_at, Some(10_000));
        assert_eq!(stats.nodes[1].user_us, 10_000);
        assert_eq!(stats.end_time, 10_000);
    }

    /// Many same-burst arrivals at one long-busy node: the deferral
    /// lane must deliver them in original send (seq) order, at the
    /// busy node's free time.
    struct Storm {
        order: Vec<u64>,
        got_at: Vec<Time>,
    }

    impl Program for Storm {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.compute(50_000, WorkKind::User);
            } else {
                // Every other node fires one message at the busy node;
                // seq order here is node-id order (Start events run in
                // node order).
                ctx.send(0, ctx.me() as u64, 8);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
            self.order.push(msg);
            self.got_at.push(ctx.now());
            ctx.compute(100, WorkKind::User);
        }
    }

    #[test]
    fn deferral_lane_replays_in_seq_order() {
        let lat = LatencyModel {
            alpha_us: 5,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 0,
            recv_cpu_us: 0,
        };
        let eng = Engine::new(mesh(9), lat, 1, |_| Storm {
            order: vec![],
            got_at: vec![],
        });
        let (progs, _) = eng.run();
        // All 8 arrive while node 0 computes; they replay in send order.
        assert_eq!(progs[0].order, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // First replay exactly when the node frees, then back to back.
        assert_eq!(progs[0].got_at[0], 50_000);
        for w in progs[0].got_at.windows(2) {
            assert_eq!(w[1], w[0] + 100);
        }
    }

    /// A timer cancelled while the timer event sat parked behind a
    /// busy node must still be suppressed when the lane replays.
    struct CancelWhileBusy {
        fired: Vec<u64>,
        pending: Option<TimerId>,
    }

    impl Program for CancelWhileBusy {
        type Msg = u8;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            if ctx.me() == 0 {
                // Timer fires at t=10, mid-compute (busy until t=100).
                self.pending = Some(ctx.set_timer(10, 7));
                ctx.compute(100, WorkKind::User);
                // A nudge from node 1 arrives later and cancels it.
            } else {
                ctx.send(0, 1, 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, _from: NodeId, _msg: u8) {
            if let Some(t) = self.pending.take() {
                ctx.cancel_timer(t);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u8>, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timer_cancelled_while_parked_is_suppressed() {
        let lat = LatencyModel {
            alpha_us: 5,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 0,
            recv_cpu_us: 0,
        };
        let eng = Engine::new(mesh(2), lat, 1, |_| CancelWhileBusy {
            fired: vec![],
            pending: None,
        });
        let (progs, _) = eng.run();
        // Both the timer (set during node 0's Start, so lower seq) and
        // the cancel-carrying message park behind the 100 µs compute.
        // The lane replays them in seq order: timer first — it fires
        // before the cancel lands, and the late cancel is a no-op.
        // This pins the old re-push scheme's exact ordering.
        assert_eq!(progs[0].fired, vec![7]);
    }

    /// Timers fire in order, and cancellation suppresses delivery.
    struct Timers {
        fired: Vec<u64>,
    }

    impl Program for Timers {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == 0 {
                ctx.set_timer(30, 3);
                ctx.set_timer(10, 1);
                let victim = ctx.set_timer(20, 2);
                ctx.cancel_timer(victim);
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {}

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, ()>, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timer_order_and_cancellation() {
        let eng = Engine::new(mesh(1), LatencyModel::ideal(), 7, |_| Timers {
            fired: vec![],
        });
        let (progs, _) = eng.run();
        assert_eq!(progs[0].fired, vec![1, 3]);
    }

    /// Halting stops the run even with events pending.
    struct Halter;

    impl Program for Halter {
        type Msg = u8;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            if ctx.me() == 0 {
                ctx.set_timer(1_000_000, 0); // would run forever-ish
                ctx.halt();
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, u8>, _from: NodeId, _msg: u8) {}
    }

    #[test]
    fn halt_stops_simulation() {
        let eng = Engine::new(mesh(4), LatencyModel::paragon(), 3, |_| Halter);
        let (_, stats) = eng.run();
        assert_eq!(stats.end_time, 0);
        assert!(stats.events <= 4);
    }

    /// Determinism: identical seeds give identical runs.
    struct RandomSpray {
        log: Vec<(NodeId, u64)>,
        hops_left: u32,
    }

    impl Program for RandomSpray {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == 0 {
                let n = ctx.num_nodes();
                let v = rand::RngExt::random_range(ctx.rng(), 0..1000u64);
                let to = rand::RngExt::random_range(ctx.rng(), 0..n);
                ctx.send(to, v, 8);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.log.push((from, msg));
            if self.hops_left > 0 {
                self.hops_left -= 1;
                let n = ctx.num_nodes();
                let to = rand::RngExt::random_range(ctx.rng(), 0..n);
                ctx.send(to, msg + 1, 8);
            }
        }
    }

    fn spray_run(seed: u64) -> Vec<Vec<(NodeId, u64)>> {
        let eng = Engine::new(mesh(9), LatencyModel::paragon(), seed, |_| RandomSpray {
            log: vec![],
            hops_left: 8,
        });
        let (progs, _) = eng.run();
        progs.into_iter().map(|p| p.log).collect()
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(spray_run(99), spray_run(99));
    }

    /// Mesh wrapper that hides its closed-form routes, forcing the
    /// engine into table mode at any size.
    struct OpaqueMesh(Mesh2D);

    impl Topology for OpaqueMesh {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
            self.0.neighbors(node)
        }
        fn distance(&self, a: NodeId, b: NodeId) -> usize {
            self.0.distance(a, b)
        }
        fn route_next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
            self.0.route_next_hop(from, to)
        }
        fn diameter(&self) -> usize {
            self.0.diameter()
        }
        fn label(&self) -> String {
            self.0.label()
        }
        // computed_routes: default false.
    }

    /// Above [`TABLE_THRESHOLD`], a computed-routes topology must give
    /// bit-for-bit the same simulation as the same topology forced
    /// into table mode — the threshold is a memory decision, never a
    /// semantic one.
    #[test]
    fn computed_and_tabled_routing_agree_across_threshold() {
        // 70 × 60 = 4200 nodes, just past the 4096 threshold.
        let run = |topo: Arc<dyn Topology>| {
            let eng = Engine::new(topo, LatencyModel::paragon(), 77, |_| RandomSpray {
                log: vec![],
                hops_left: 40,
            });
            let tabled = eng.routing_tabled();
            let (progs, stats) = eng.run();
            let logs: Vec<_> = progs.into_iter().map(|p| p.log).collect();
            (tabled, logs, stats)
        };
        let (tabled_a, logs_a, stats_a) = run(Arc::new(Mesh2D::new(70, 60)));
        let (tabled_b, logs_b, stats_b) = run(Arc::new(OpaqueMesh(Mesh2D::new(70, 60))));
        assert!(!tabled_a, "mesh past the threshold should route computed");
        assert!(tabled_b, "opaque wrapper should force tables");
        assert_eq!(logs_a, logs_b);
        assert_eq!(stats_a.end_time, stats_b.end_time);
        assert_eq!(stats_a.net, stats_b.net);
        assert_eq!(stats_a.events, stats_b.events);
        // Only the memory accounting may differ: no O(n²) bytes on the
        // computed side, n² table bytes on the tabled side.
        assert_eq!(stats_a.mem.routing_table_bytes, 0);
        assert_eq!(stats_b.mem.routing_table_bytes, (4200u64 * 4200) * 2);
    }

    /// Below the threshold the provided topologies still use tables
    /// (they measurably win at small n).
    #[test]
    fn small_machines_stay_tabled() {
        let eng = Engine::new(mesh(16), LatencyModel::paragon(), 1, |_| PingPong {
            seen: vec![],
        });
        assert!(eng.routing_tabled());
        let (_, stats) = eng.run();
        assert_eq!(stats.mem.routing_table_bytes, 16 * 16 * 2);
        assert!(stats.mem.node_state_bytes > 0);
    }

    #[test]
    fn different_seeds_diverge() {
        // Not guaranteed in principle, but overwhelmingly likely; if
        // this ever flakes the RNG plumbing is broken anyway.
        assert_ne!(spray_run(1), spray_run(2));
    }

    #[test]
    fn send_cpu_charged_as_overhead() {
        let lat = LatencyModel {
            alpha_us: 0,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 7,
            recv_cpu_us: 11,
        };
        let eng = Engine::new(mesh(2), lat, 1, |_| PingPong { seen: vec![] });
        let (_, stats) = eng.run();
        // Node 0: 1 send in on_start + sends in on_message replies.
        assert!(stats.nodes[0].overhead_us >= 7);
        assert!(stats.nodes[1].overhead_us >= 11);
    }

    /// Broadcast fan-out: each of the k-th of `N - 1` recipients sees
    /// a departure offset of `(k + 1) · send_cpu`, exactly as if the
    /// sends had been issued one by one.
    struct Shout {
        got_at: Option<Time>,
    }

    impl Program for Shout {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send_all(42, 16);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
            assert_eq!(msg, 42);
            self.got_at = Some(ctx.now());
        }
    }

    #[test]
    fn broadcast_staggers_departures_by_send_cpu() {
        let lat = LatencyModel {
            alpha_us: 5,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 7,
            recv_cpu_us: 0,
        };
        let eng = Engine::new(mesh(4), lat, 1, |_| Shout { got_at: None });
        let (progs, stats) = eng.run();
        // Recipients in node order: node 1 departs at offset 7, node 2
        // at 14, node 3 at 21; arrival adds alpha = 5 (zero per-hop).
        assert_eq!(progs[1].got_at, Some(12));
        assert_eq!(progs[2].got_at, Some(19));
        assert_eq!(progs[3].got_at, Some(26));
        // Sender was charged all three send costs.
        assert_eq!(stats.nodes[0].overhead_us, 21);
        assert_eq!(stats.net.msgs, 3);
    }
}
