//! Per-node and whole-run accounting.

use crate::Time;

/// Classification of CPU time consumed inside a handler. The split
/// drives Table I's decomposition of each node's timeline: user work
/// plus `Th` overhead plus `Ti` idle accounts for every µs of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// Useful application work (task execution) — the user-work share
    /// of Table I's timeline; summed over nodes it is the `Ts`
    /// numerator of Table III's speedup.
    User,
    /// Scheduling/system work: load-information exchange, queue
    /// manipulation, task packing, phase-transfer protocol — Table I's
    /// `Th` (mean scheduling overhead). Whatever remains of the
    /// timeline is Table I's `Ti` (mean idle time).
    Overhead,
}

/// CPU accounting for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Total user compute time (µs).
    pub user_us: Time,
    /// Total system overhead time (µs).
    pub overhead_us: Time,
    /// Messages sent by this node.
    pub msgs_sent: u64,
    /// Payload bytes sent by this node.
    pub bytes_sent: u64,
}

impl NodeStats {
    /// Idle time given the run's end time: whatever part of the
    /// timeline was neither user work nor overhead.
    pub fn idle_us(&self, end: Time) -> Time {
        end.saturating_sub(self.user_us + self.overhead_us)
    }
}

/// Network-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages delivered.
    pub msgs: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Total link traversals (Σ hops over messages) — the simulator's
    /// analogue of the paper's `Σ e_k` communication cost.
    pub hops: u64,
}

/// Modelled memory footprint of the engine's scale-sensitive state.
///
/// These are **deterministic modelled bytes** computed from structure
/// sizes — not measured RSS, which would vary run to run and break the
/// bit-for-bit reproducibility contract (`RunStats` is `Eq`-compared
/// across traced/untraced runs). The scale-curve bench pairs these
/// with the process's real `VmHWM` for the checked-in report.
///
/// The headline number is `routing_table_bytes`: zero means the run
/// routed on the fly via [`rips_topology::Topology::computed_routes`]
/// and materialised no O(n²) structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes in materialised flat routing tables (hop-distance plus
    /// next-hop when built). Zero when the topology's closed-form
    /// routes were computed on the fly.
    pub routing_table_bytes: u64,
    /// Bytes of per-directed-link contention state (`n²` link free
    /// times when store-and-forward contention is enabled, else 0).
    pub link_state_bytes: u64,
    /// Fixed per-node engine state (lanes, wake markers, ready times,
    /// RNGs, counters) — O(1) per node, summed over nodes.
    pub node_state_bytes: u64,
    /// Peak outstanding events (heap + deferral lanes) times the
    /// per-event footprint.
    pub peak_event_bytes: u64,
}

impl MemStats {
    /// Total modelled bytes across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.routing_table_bytes
            + self.link_state_bytes
            + self.node_state_bytes
            + self.peak_event_bytes
    }
}

/// One contiguous stretch of CPU activity on a node (timeline
/// recording only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusySpan {
    /// Span start (µs).
    pub start: Time,
    /// Span end (µs, exclusive).
    pub end: Time,
    /// What the CPU was doing.
    pub kind: WorkKind,
}

/// Summary of a completed simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Virtual time at which the last handler finished (µs). This is
    /// the parallel execution time `T` of Table I.
    pub end_time: Time,
    /// Per-node CPU accounting.
    pub nodes: Vec<NodeStats>,
    /// Network counters.
    pub net: NetStats,
    /// Number of events processed (protocol-complexity diagnostic).
    pub events: u64,
    /// High-water mark of outstanding events (heap + deferral lanes) —
    /// the simulator's working-set diagnostic.
    pub peak_queue_depth: u64,
    /// Modelled memory footprint of the engine's scale-sensitive
    /// structures (deterministic; see [`MemStats`]).
    pub mem: MemStats,
    /// Per-node busy spans, present when the engine ran with
    /// `record_timeline` — the raw material for utilization charts.
    pub timelines: Option<Vec<Vec<BusySpan>>>,
}

impl RunStats {
    /// Mean per-node system overhead (µs) — Table I's `Th`.
    pub fn mean_overhead_us(&self) -> f64 {
        mean(self.nodes.iter().map(|n| n.overhead_us))
    }

    /// Mean per-node idle time (µs) — Table I's `Ti`.
    pub fn mean_idle_us(&self) -> f64 {
        let end = self.end_time;
        mean(self.nodes.iter().map(|n| n.idle_us(end)))
    }

    /// Mean per-node user compute time (µs).
    pub fn mean_user_us(&self) -> f64 {
        mean(self.nodes.iter().map(|n| n.user_us))
    }

    /// Total user compute over all nodes (µs) — the simulated `Ts` when
    /// the workload is fixed.
    pub fn total_user_us(&self) -> Time {
        self.nodes.iter().map(|n| n.user_us).sum()
    }

    /// Efficiency `µ = Ts / (Tp · N)` where `Ts` is total user work
    /// performed and `Tp` the parallel end time.
    pub fn efficiency(&self) -> f64 {
        if self.end_time == 0 || self.nodes.is_empty() {
            return 1.0;
        }
        self.total_user_us() as f64 / (self.end_time as f64 * self.nodes.len() as f64)
    }
}

fn mean(values: impl Iterator<Item = Time>) -> f64 {
    let mut sum = 0u128;
    let mut n = 0u64;
    for v in values {
        sum += v as u128;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_remainder() {
        let n = NodeStats {
            user_us: 600,
            overhead_us: 150,
            ..Default::default()
        };
        assert_eq!(n.idle_us(1000), 250);
        // Saturates rather than underflows if accounting slightly
        // overshoots the end time.
        assert_eq!(n.idle_us(500), 0);
    }

    #[test]
    fn efficiency_perfect_when_fully_busy() {
        let stats = RunStats {
            end_time: 1000,
            nodes: vec![
                NodeStats {
                    user_us: 1000,
                    ..Default::default()
                };
                4
            ],
            net: NetStats::default(),
            events: 0,
            peak_queue_depth: 0,
            mem: MemStats::default(),
            timelines: None,
        };
        assert!((stats.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_halves_with_half_idle() {
        let stats = RunStats {
            end_time: 1000,
            nodes: vec![
                NodeStats {
                    user_us: 500,
                    ..Default::default()
                };
                8
            ],
            net: NetStats::default(),
            events: 0,
            peak_queue_depth: 0,
            mem: MemStats::default(),
            timelines: None,
        };
        assert!((stats.efficiency() - 0.5).abs() < 1e-12);
    }
}
