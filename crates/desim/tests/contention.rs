//! Tests for the store-and-forward link-contention mode.

use std::sync::Arc;

use rips_desim::{Ctx, Engine, LatencyModel, Program, Time};
use rips_topology::{Mesh2D, NodeId, Topology};

/// Node 0 fires `count` messages at a single destination in one
/// handler; the receiver records arrival times.
struct Burst {
    count: u32,
    dest: NodeId,
    arrivals: Vec<Time>,
}

impl Program for Burst {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.me() == 0 {
            for i in 0..self.count {
                ctx.send(self.dest, i, 1000);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, _msg: u32) {
        self.arrivals.push(ctx.now());
    }
}

fn lat() -> LatencyModel {
    LatencyModel {
        alpha_us: 10,
        per_byte_ns: 1000, // 1 µs per byte: transmission dominates
        per_hop_us: 5,
        send_cpu_us: 0,
        recv_cpu_us: 0,
    }
}

fn run_burst(contention: bool, count: u32, dest: NodeId) -> Vec<Time> {
    let topo: Arc<dyn Topology> = Arc::new(Mesh2D::new(1, 4));
    let mut engine = Engine::new(topo, lat(), 1, |_| Burst {
        count,
        dest,
        arrivals: vec![],
    });
    engine.enable_contention(contention);
    let (progs, _) = engine.run();
    progs[dest].arrivals.clone()
}

#[test]
fn shared_link_serializes_a_burst() {
    // 4 one-KB messages to an adjacent node over one link: with
    // contention they arrive ~transmit-time apart; without, they all
    // arrive at the same instant.
    let with = run_burst(true, 4, 1);
    let without = run_burst(false, 4, 1);
    assert_eq!(with.len(), 4);
    assert_eq!(without.len(), 4);
    assert_eq!(without[3] - without[0], 0, "contention-free should batch");
    let transmit = 5 + 1000; // per_hop + bytes
    assert!(
        with[3] - with[0] >= 3 * transmit - 3,
        "serialized spread {} too small",
        with[3] - with[0]
    );
}

#[test]
fn multi_hop_store_and_forward_pays_per_hop() {
    // A single message 3 hops away: contention mode retransmits the
    // payload at every hop.
    let with = run_burst(true, 1, 3);
    let without = run_burst(false, 1, 3);
    let transmit = 5 + 1000;
    assert_eq!(without[0], 10 + 3 * 5 + 1000); // α + hops·per_hop + bytes once
    assert_eq!(with[0], 10 + 3 * transmit as Time); // α + per-hop store-and-forward
}

#[test]
fn self_and_adjacent_sends_still_work() {
    let topo: Arc<dyn Topology> = Arc::new(Mesh2D::new(1, 2));
    struct SelfSend {
        got: bool,
    }
    impl Program for SelfSend {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == 0 {
                ctx.send(0, (), 64);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
            self.got = true;
        }
    }
    let mut engine = Engine::new(topo, lat(), 1, |_| SelfSend { got: false });
    engine.enable_contention(true);
    let (progs, _) = engine.run();
    assert!(progs[0].got);
}

#[test]
fn disjoint_routes_do_not_interfere() {
    // Two independent pairs on a 1x4 line: (0→1) and (2→3) share no
    // link, so contention changes nothing for them.
    struct Pairs {
        arrivals: Vec<Time>,
    }
    impl Program for Pairs {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            match ctx.me() {
                0 => ctx.send(1, (), 1000),
                2 => ctx.send(3, (), 1000),
                _ => {}
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
            self.arrivals.push(ctx.now());
        }
    }
    let run = |contention| {
        let topo: Arc<dyn Topology> = Arc::new(Mesh2D::new(1, 4));
        let mut engine = Engine::new(topo, lat(), 1, |_| Pairs { arrivals: vec![] });
        engine.enable_contention(contention);
        let (progs, _) = engine.run();
        (progs[1].arrivals.clone(), progs[3].arrivals.clone())
    };
    let (a_on, b_on) = run(true);
    let (a_off, b_off) = run(false);
    assert_eq!(a_on, a_off);
    assert_eq!(b_on, b_off);
}
