//! Property tests for the simulation engine: conservation of messages,
//! accounting consistency, and determinism under arbitrary traffic
//! patterns.

use std::sync::Arc;

use proptest::prelude::*;
use rips_desim::{Ctx, Engine, LatencyModel, Program, WorkKind};
use rips_topology::{Mesh2D, NodeId, Topology};

/// A node that forwards a token a fixed number of times along a
/// scripted path, consuming scripted compute along the way.
struct Scripted {
    hops: Vec<(NodeId, u64)>,
    received: u64,
}

impl Program for Scripted {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.me() == 0 {
            ctx.send(0, 0, 8); // self-send bootstraps the token walk
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, hop: u32) {
        self.received += 1;
        if let Some(&(next, work)) = self.hops.get(hop as usize) {
            ctx.compute(work, WorkKind::User);
            ctx.send(next, hop + 1, 8);
        }
    }
}

fn arb_script(n: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..n, 0u64..500), 0..40)
}

/// Every node but 0 fires a numbered burst at node 0, which records
/// the `(sender, tag)` arrival order while grinding per message.
struct Flood {
    burst: u32,
    grind: u64,
    log: Vec<(NodeId, u32)>,
}

impl Program for Flood {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        for i in 0..self.burst {
            ctx.send(0, i, 8);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, tag: u32) {
        self.log.push((from, tag));
        if self.grind > 0 {
            ctx.compute(self.grind, WorkKind::User);
        }
    }
}

proptest! {
    /// Exactly one message per scripted hop (plus the bootstrap) is
    /// delivered, regardless of latency model or path.
    #[test]
    fn message_conservation(
        script in arb_script(12),
        alpha in 0u64..500,
        per_hop in 0u64..100,
    ) {
        let topo: Arc<dyn Topology> = Arc::new(Mesh2D::new(3, 4));
        let lat = LatencyModel {
            alpha_us: alpha,
            per_byte_ns: 10,
            per_hop_us: per_hop,
            send_cpu_us: 5,
            recv_cpu_us: 5,
        };
        let script2 = script.clone();
        // Every node shares the global script: the walk visits
        // whichever node currently holds the token.
        let engine = Engine::new(topo, lat, 1, move |_| Scripted {
            hops: script2.clone(),
            received: 0,
        });
        let (progs, stats) = engine.run();
        let delivered: u64 = progs.iter().map(|p| p.received).sum();
        prop_assert_eq!(delivered, script.len() as u64 + 1);
        prop_assert_eq!(stats.net.msgs, script.len() as u64 + 1);
    }

    /// Per-node accounting never exceeds the run's end time, and the
    /// end time covers every consumed microsecond.
    #[test]
    fn accounting_fits_inside_end_time(script in arb_script(9)) {
        let topo: Arc<dyn Topology> = Arc::new(Mesh2D::new(3, 3));
        let script2 = script.clone();
        let engine = Engine::new(topo, LatencyModel::paragon(), 2, move |_| Scripted {
            hops: script2.clone(),
            received: 0,
        });
        let (_, stats) = engine.run();
        for node in &stats.nodes {
            prop_assert!(node.user_us + node.overhead_us <= stats.end_time);
        }
        let max_busy = stats
            .nodes
            .iter()
            .map(|n| n.user_us + n.overhead_us)
            .max()
            .unwrap_or(0);
        prop_assert!(stats.end_time >= max_busy);
    }

    /// Same seed and script ⇒ identical statistics.
    #[test]
    fn runs_are_reproducible(script in arb_script(12), seed in 0u64..1000) {
        let run = |script: Vec<(usize, u64)>, seed| {
            let topo: Arc<dyn Topology> = Arc::new(Mesh2D::new(4, 3));
            let engine = Engine::new(topo, LatencyModel::paragon(), seed, move |_| Scripted {
                hops: script.clone(),
                received: 0,
            });
            let (_, stats) = engine.run();
            (stats.end_time, stats.net, stats.events)
        };
        prop_assert_eq!(run(script.clone(), seed), run(script, seed));
    }

    /// Same-time arrivals at a busy node are delivered in the order
    /// the messages were sent (global issue order), no matter how long
    /// the receiver grinds per message — the deferral-lane invariant.
    #[test]
    fn busy_node_delivers_same_time_arrivals_in_send_order(
        counts in proptest::collection::vec(0u32..8, 1..12),
        grind in 0u64..200,
        alpha in 1u64..500,
    ) {
        // Zero send CPU and zero per-hop/per-byte cost: every message
        // departs at t=0 and lands on node 0 at exactly `alpha`, so
        // all arrivals tie on time and only the engine's ordering rule
        // separates them.
        let lat = LatencyModel {
            alpha_us: alpha,
            per_byte_ns: 0,
            per_hop_us: 0,
            send_cpu_us: 0,
            recv_cpu_us: 0,
        };
        let n = counts.len() + 1;
        let topo: Arc<dyn Topology> = Arc::new(Mesh2D::new(1, n));
        let counts2 = counts.clone();
        let engine = Engine::new(topo, lat, 7, move |me| Flood {
            burst: if me == 0 { 0 } else { counts2[me - 1] },
            grind,
            log: Vec::new(),
        });
        let (progs, _) = engine.run();
        // on_start runs in node-id order and sends are issued in tag
        // order within a node, so global issue order is exactly
        // (sender id, tag) lexicographic.
        let expected: Vec<(usize, u32)> = (1..n)
            .flat_map(|s| (0..counts[s - 1]).map(move |i| (s, i)))
            .collect();
        prop_assert_eq!(&progs[0].log, &expected);
    }

    /// Hop accounting matches the topology's distance metric.
    #[test]
    fn hop_counting_matches_distance(script in arb_script(12)) {
        let mesh = Mesh2D::new(3, 4);
        let expected: u64 = {
            // Replay the walk: token starts at 0 (self-send, 0 hops).
            let mut at = 0usize;
            let mut hops = 0u64;
            for &(next, _) in &script {
                hops += mesh.distance(at, next) as u64;
                at = next;
            }
            hops
        };
        let topo: Arc<dyn Topology> = Arc::new(mesh);
        let script2 = script.clone();
        let engine = Engine::new(topo, LatencyModel::ideal(), 3, move |_| Scripted {
            hops: script2.clone(),
            received: 0,
        });
        let (_, stats) = engine.run();
        prop_assert_eq!(stats.net.hops, expected);
    }
}
