//! Facade crate for the RIPS reproduction workspace.
//!
//! Re-exports every subsystem crate under a stable path so examples and
//! integration tests can `use rips_repro::...`.

pub use rips_apps as apps;
pub use rips_audit as audit;
pub use rips_balancers as balancers;
pub use rips_bench as bench;
pub use rips_collectives as collectives;
pub use rips_core as core;
pub use rips_desim as desim;
pub use rips_flow as flow;
pub use rips_live as live;
pub use rips_metrics as metrics;
pub use rips_runtime as runtime;
pub use rips_sched as sched;
pub use rips_serve as serve;
pub use rips_taskgraph as taskgraph;
pub use rips_topology as topology;
pub use rips_trace as trace;
