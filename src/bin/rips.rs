//! `rips` — command-line driver for the reproduction.
//!
//! ```text
//! rips run    --app queens13 --scheduler rips --nodes 32 [--policy any-lazy] [--seed 1]
//!             [--metrics-out m.txt]
//! rips live   [<scheduler>] <app> --threads 4 [--mode compute|timed] [--transport ring|mpsc]
//!             [--audit] [--trace-out f] [--metrics-out m.txt]
//! rips stats  [<scheduler>] <app> [--backend sim|live] [--nodes 32|--threads 4] [--out m.txt]
//! rips trace  <scheduler> <app> [--nodes 32] [--seed 1] [--out trace.json] [--check]
//! rips report <scheduler> <app> [--nodes 32] [--seed 1] [--jsonl]
//! rips audit  <scheduler> <app> [--nodes 32] [--seed 1]   # check paper invariants
//! rips audit  --all [--nodes 32] [--seed 1]               # ... across the roster
//! rips serve  [--backend sim|live] [--scheduler rips] [--nodes 8|--threads 2]
//!             [--tenants 4] [--jobs 8] [--mean-interarrival-us 50000|--rate jobs/s]
//!             [--process poisson|bursty[:N]] [--max-pending 64] [--quota 16]
//!             [--quantum 64] [--seed 1] [--tiny] [--audit] [--json|--out r.json]
//!             [--metrics-out m.txt]
//! rips bench-serve [--schedulers rips,rips-h,rid] [--nodes 8] [--threads 2]
//!             [--loads 0.3,1.0,2.5] [--tenants 4] [--jobs 8] [--seed 1]
//! rips plan   --rows 8 --cols 4 --loads 25,0,3,...   # one-shot MWA on a load vector
//! rips lint   [--root .] [--format json] [--out report.json]
//! rips verify [--bound 3] [--mode dfs|random] [--seed 1] [--out replays/]
//! rips apps                                          # list available workloads
//! ```
//!
//! `trace` runs one scheduler with the structured trace sink attached
//! and writes a Chrome trace-event JSON file — open it at
//! <https://ui.perfetto.dev> for per-node phase/task timelines.
//! `report` runs the same way but prints the aggregated phase-anatomy
//! table (p50/p95/max durations per system phase) instead.
//! `audit` runs with the invariant [`Auditor`] attached and fails if
//! any paper invariant (Theorem 1/2, conservation, barrier pairing) is
//! violated. `lint` runs the rips-lint static analysis pass over the
//! workspace source (rules RIPS-L001…L006; see DESIGN §7). `verify`
//! rebuilds the workspace with `--cfg rips_verify` and runs the
//! bounded model checker over the lock-free live paths (DESIGN §11).
//!
//! `serve` runs the open-loop multi-tenant service (DESIGN §12): N
//! tenants submit seeded streams of catalog jobs through admission
//! control and deficit-round-robin fairness into a single-fleet queue
//! on either backend, reporting per-tenant and aggregate p50/p95/p99
//! job latency, sustained jobs/s, and shed rate. `bench-serve` sweeps
//! offered load to locate each scheduler's saturation knee (the JSON
//! artifact comes from the `bench_serve` bin in rips-serve).
//!
//! `live` runs the scheduler on the *live* backend — one OS thread per
//! node, batched packets over sharded SPSC rings (`--transport mpsc`
//! falls back to the old channel mailboxes), wall-clock time —
//! executing the real application grains, and checks the solution
//! count and execution checksum against the sequential reference.
//! `--audit` additionally streams the live trace through the same
//! [`Auditor`] the simulator uses (DESIGN §8).
//!
//! Live runs carry always-on telemetry (DESIGN §10): a per-thread
//! metrics registry, a flight recorder holding each node's recent
//! trace events, and a stall watchdog that dumps the flight recorder
//! instead of hanging silently. `--metrics-out` (and the dedicated
//! `stats` subcommand, which also covers the simulator backend)
//! export the registry as OpenMetrics text.

use std::sync::Arc;

use rips_repro::apps::GrainTable;
use rips_repro::audit::Auditor;
use rips_repro::bench::live::{live_opts, live_run, live_run_rips};
use rips_repro::bench::{registry_with, RegistryTuning};
use rips_repro::core::{GlobalPolicy, LocalPolicy, RipsConfig};
use rips_repro::desim::LatencyModel;
use rips_repro::live::{GrainMode, TransportKind, WallClock};
use rips_repro::live::{Watchdog, WatchdogOpts};
use rips_repro::runtime::{Costs, RunSpec, SchedulerRegistry};
use rips_repro::sched::{min_nonlocal_tasks, mwa};
use rips_repro::taskgraph::Workload;
use rips_repro::topology::{Mesh2D, Topology};
use rips_repro::trace::{
    metrics_rt, validate, with_metrics, with_metrics_clocked, Clock, CycleClock, MetricsRegistry,
    SharedFlight, Tee, TraceBuffer,
};

fn arg(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Flight-recorder depth: recent trace events retained per node for
/// post-mortem dumps (watchdog trip, audit failure, checksum
/// mismatch). 256 events ≈ the last few dispatch rounds per node.
const FLIGHT_EVENTS_PER_NODE: usize = 256;

const APPS: &[&str] = &[
    "queens9", "queens10", "queens11", "queens12", "queens13", "queens14", "queens15", "ida1",
    "ida2", "ida3", "gromos8", "gromos12", "gromos16",
];

fn build_app_live(name: &str) -> (Workload, GrainTable) {
    use rips_repro::apps::{
        gromos_with_grains, nqueens_with_grains, puzzle_with_grains, GromosConfig, NQueensConfig,
        PuzzleConfig,
    };
    // The sub-paper sizes (smoke tests, CI traces) split shallower so
    // the task count stays proportionate to the tiny boards.
    let small_queens = |n| NQueensConfig {
        n,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    };
    match name {
        "queens9" => nqueens_with_grains(small_queens(9)),
        "queens10" => nqueens_with_grains(small_queens(10)),
        "queens11" => nqueens_with_grains(NQueensConfig::paper(11)),
        "queens12" => nqueens_with_grains(NQueensConfig::paper(12)),
        "queens13" => nqueens_with_grains(NQueensConfig::paper(13)),
        "queens14" => nqueens_with_grains(NQueensConfig::paper(14)),
        "queens15" => nqueens_with_grains(NQueensConfig::paper(15)),
        "ida1" => puzzle_with_grains(PuzzleConfig::paper(1)),
        "ida2" => puzzle_with_grains(PuzzleConfig::paper(2)),
        "ida3" => puzzle_with_grains(PuzzleConfig::paper(3)),
        "gromos8" => gromos_with_grains(GromosConfig::paper(8.0)),
        "gromos12" => gromos_with_grains(GromosConfig::paper(12.0)),
        "gromos16" => gromos_with_grains(GromosConfig::paper(16.0)),
        other => {
            eprintln!("unknown app '{other}'; available: {APPS:?}");
            std::process::exit(2);
        }
    }
}

fn build_app(name: &str) -> Workload {
    build_app_live(name).0
}

/// Builds the registry for `--policy` and resolves a case-insensitive
/// scheduler name against its roster.
fn resolve_scheduler(scheduler: &str, policy: &str) -> (SchedulerRegistry, String) {
    let (local, global) = match policy {
        "any-lazy" => (LocalPolicy::Lazy, GlobalPolicy::Any),
        "any-eager" => (LocalPolicy::Eager, GlobalPolicy::Any),
        "all-lazy" => (LocalPolicy::Lazy, GlobalPolicy::All),
        "all-eager" => (LocalPolicy::Eager, GlobalPolicy::All),
        other => {
            eprintln!("unknown policy '{other}' (any-lazy|any-eager|all-lazy|all-eager)");
            std::process::exit(2);
        }
    };
    let reg = registry_with(RegistryTuning {
        rips: RipsConfig {
            local,
            global,
            ..RipsConfig::default()
        },
        ..RegistryTuning::default()
    });
    let Some(name) = reg
        .names()
        .iter()
        .find(|n| n.eq_ignore_ascii_case(scheduler))
        .map(|n| n.to_string())
    else {
        eprintln!(
            "unknown scheduler '{scheduler}'; available: {}",
            reg.names().join("|").to_lowercase()
        );
        std::process::exit(2);
    };
    (reg, name)
}

/// Renders the registry as OpenMetrics text and writes it to `path`
/// (`-` means stdout). The text is validated before it leaves the
/// process so a malformed exposition is a bug here, not downstream.
fn write_metrics(reg: &MetricsRegistry, path: &str) {
    let text = reg.snapshot().render_openmetrics();
    if let Err(e) = metrics_rt::validate_openmetrics(&text) {
        eprintln!("internal error: OpenMetrics render invalid: {e}");
        std::process::exit(1);
    }
    if path == "-" {
        print!("{text}");
    } else {
        std::fs::write(path, &text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}: {} bytes of OpenMetrics text", text.len());
    }
}

fn paper_spec(workload: &Arc<Workload>, nodes: usize, seed: u64) -> RunSpec {
    RunSpec {
        workload: Arc::clone(workload),
        nodes,
        latency: LatencyModel::paragon(),
        costs: Costs::default(),
        seed,
        rid_u: 0.4,
    }
}

fn cmd_run() {
    let app = arg("--app").unwrap_or_else(|| "queens13".into());
    let scheduler = arg("--scheduler").unwrap_or_else(|| "rips".into());
    let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(32);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let policy = arg("--policy").unwrap_or_else(|| "any-lazy".into());

    eprintln!("building workload '{app}' ...");
    let (workload, table) = build_app_live(&app);
    let workload = Arc::new(workload);
    let stats = workload.stats();
    println!(
        "workload: {} | {} tasks | {} rounds | Ts = {:.2} s",
        workload.name,
        stats.tasks,
        workload.rounds.len(),
        stats.total_work_us as f64 / 1e6
    );

    let mesh = Mesh2D::near_square(nodes);
    println!("machine:  {} ({} nodes)", mesh.label(), nodes);

    let (reg, name) = resolve_scheduler(&scheduler, &policy);
    let spec = paper_spec(&workload, nodes, seed);
    // One registry shard per simulated node; the simulator's virtual
    // clock means counters fill but the ns histograms stay empty.
    let metrics = MetricsRegistry::new(nodes);
    let run = with_metrics(&metrics, || reg.run(&name, &spec));
    let outcome = run.outcome;
    let phases = outcome.system_phases;
    outcome
        .verify_complete(&workload)
        .expect("scheduler lost tasks");

    println!("\nresults ({scheduler}):");
    println!("  non-local tasks : {}", outcome.nonlocal);
    println!("  overhead Th     : {:.3} s", outcome.overhead_s());
    println!("  idle Ti         : {:.3} s", outcome.idle_s());
    println!("  exec time T     : {:.3} s", outcome.exec_time_s());
    println!(
        "  speedup         : {:.1}",
        outcome.stats.total_user_us() as f64 / outcome.stats.end_time as f64
    );
    println!("  efficiency      : {:.1}%", outcome.efficiency() * 100.0);
    println!("  sim events      : {}", outcome.stats.events);
    println!("  peak evt queue  : {}", outcome.stats.peak_queue_depth);
    if phases > 0 {
        println!("  system phases   : {phases}");
    }
    // The simulator schedules grains without running them; the app's
    // answer comes from the sequential grain-table reference (what a
    // live run must reproduce — compare with `rips live`).
    let truth = table.static_totals();
    println!("  solutions       : {}", truth.solutions);
    println!("  grain checksum  : {:#018x}", truth.checksum);
    if let Some(path) = arg("--metrics-out") {
        write_metrics(&metrics, &path);
    }
}

fn cmd_live() {
    // Positionals may appear before, between, or after flags
    // (`rips live --threads 4 queens9` and `rips live rid queens9
    // --threads 2` both work).
    let mut positionals = Vec::new();
    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        if a.starts_with("--") {
            if a != "--audit" {
                args.next(); // skip the flag's value
            }
        } else {
            positionals.push(a);
        }
    }
    let mut pos = positionals.into_iter();
    let (scheduler, app) = match (pos.next(), pos.next()) {
        (Some(s), Some(a)) => (s, a),
        (Some(a), None) => ("rips".to_string(), a),
        _ => {
            eprintln!(
                "usage: rips live [<scheduler>] <app> [--threads N] [--mode compute|timed] \
                 [--transport ring|mpsc] [--timed-scale F] [--seed S] [--policy P] [--audit] \
                 [--trace-out f.json]"
            );
            std::process::exit(2);
        }
    };
    let threads: usize = arg("--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let policy = arg("--policy").unwrap_or_else(|| "any-lazy".into());
    let mode = match arg("--mode").as_deref() {
        None | Some("compute") => GrainMode::Compute,
        Some("timed") => GrainMode::Timed,
        Some(other) => {
            eprintln!("unknown --mode '{other}' (compute|timed)");
            std::process::exit(2);
        }
    };
    let timed_scale: f64 = arg("--timed-scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let transport = match arg("--transport") {
        None => TransportKind::Ring,
        Some(v) => TransportKind::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown --transport '{v}' (ring|mpsc)");
            std::process::exit(2);
        }),
    };
    let audit = arg_flag("--audit");
    let trace_out = arg("--trace-out");
    let metrics_out = arg("--metrics-out");

    eprintln!("building workload '{app}' ...");
    let (workload, table) = build_app_live(&app);
    let workload = Arc::new(workload);
    let table = Arc::new(table);
    let (_, name) = resolve_scheduler(&scheduler, &policy);
    let truth = table.static_totals();

    let clock: Arc<WallClock> = Arc::new(WallClock::new());
    let run = |clock: &Arc<WallClock>| {
        let mut opts = live_opts(&table, mode, timed_scale);
        opts.transport = transport;
        opts.clock = Some(Arc::clone(clock) as Arc<dyn Clock>);
        if name == "RIPS" {
            let (local, global) = match policy.as_str() {
                "any-lazy" => (LocalPolicy::Lazy, GlobalPolicy::Any),
                "any-eager" => (LocalPolicy::Eager, GlobalPolicy::Any),
                "all-lazy" => (LocalPolicy::Lazy, GlobalPolicy::All),
                _ => (LocalPolicy::Eager, GlobalPolicy::All),
            };
            let cfg = RipsConfig {
                local,
                global,
                ..RipsConfig::default()
            };
            live_run_rips(&workload, threads, cfg, seed, opts)
        } else {
            live_run(&name, &workload, threads, 0.4, seed, opts)
        }
    };

    eprintln!(
        "live run: {name} on {threads} threads (mode {:?}, transport {}, seed {seed}) ...",
        mode,
        transport.name()
    );

    // Always-on telemetry (DESIGN §10): every live run carries the
    // metrics registry (one shard per node thread), a flight recorder
    // of each node's recent trace events, and a stall watchdog
    // sampling per-node dispatch-round progress. A wedged run becomes
    // a stderr dump of who stalled and what each node last did
    // instead of a silent hang.
    let metrics = MetricsRegistry::new(threads);
    let flight = SharedFlight::new(threads, FLIGHT_EVENTS_PER_NODE);
    let wd_flight = flight.clone();
    let watchdog = Watchdog::spawn(
        Arc::clone(&metrics),
        WatchdogOpts::default(),
        move |report| {
            eprintln!("rips-watchdog: {}", report.summary());
            wd_flight.dump_to_stderr("watchdog stall");
        },
    );

    let (out, audit_ok) =
        with_metrics_clocked(&metrics, Arc::clone(&clock) as Arc<dyn CycleClock>, || {
            if audit || trace_out.is_some() {
                // One install feeds all three consumers: the flight
                // recorder rides beside the invariant auditor and the
                // buffer destined for the Perfetto export.
                let sink = Tee(
                    flight.clone(),
                    Tee(Auditor::new(threads), TraceBuffer::new()),
                );
                let (Tee(_, Tee(auditor, buf)), out) = rips_repro::trace::with_sink_clocked(
                    sink,
                    Arc::clone(&clock) as Arc<dyn Clock>,
                    || run(&clock),
                );
                let mut ok = true;
                if audit {
                    let report = auditor.finish();
                    print!("{}", report.render_human());
                    ok = report.is_ok();
                }
                if let Some(path) = trace_out {
                    let label = format!("{name} · {app} · {threads} threads (live) · seed {seed}");
                    let json = buf.chrome_json(&label, out.wall_us);
                    std::fs::write(&path, &json).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!(
                        "wrote {path}: {} events ({} bytes)",
                        buf.records.len(),
                        json.len()
                    );
                }
                (out, ok)
            } else {
                // No auditor or export requested: the flight recorder
                // alone taps the trace stream.
                let (_flight, out) = rips_repro::trace::with_sink_clocked(
                    flight.clone(),
                    Arc::clone(&clock) as Arc<dyn Clock>,
                    || run(&clock),
                );
                (out, true)
            }
        });
    let trips = watchdog.stop();

    println!("\nlive results ({name}, {threads} threads):");
    println!("  wall clock      : {:.3} s", out.wall_us as f64 / 1e6);
    println!("  tasks executed  : {}", out.total_executed());
    println!("  non-local tasks : {}", out.nonlocal);
    println!(
        "  grain time      : {:.3} s (modelled)",
        out.grain_us as f64 / 1e6
    );
    if out.system_phases > 0 {
        println!("  system phases   : {}", out.system_phases);
    }
    println!("  solutions       : {}", out.solutions);
    println!("  grain checksum  : {:#018x}", out.checksum);
    let matches = out.solutions == truth.solutions && out.checksum == truth.checksum;
    println!(
        "  vs sequential   : {}",
        if matches {
            "MATCH (solutions and checksum)"
        } else {
            "MISMATCH"
        }
    );
    let snap = metrics.snapshot();
    println!(
        "  dispatch rounds : {}",
        snap.counter(metrics_rt::Counter::DispatchRounds)
    );
    let round = snap.histo(metrics_rt::Histo::DispatchRoundNs);
    if round.count > 0 {
        println!(
            "  round mean      : {:.0} ns (p95 ≤ {} ns)",
            round.mean(),
            round.quantile_ub(0.95)
        );
    }
    if trips > 0 {
        println!("  watchdog trips  : {trips}");
    }
    if let Some(path) = metrics_out {
        write_metrics(&metrics, &path);
    }
    if !matches {
        eprintln!(
            "cross-validation FAILED: expected {} solutions / {:#018x}",
            truth.solutions, truth.checksum
        );
        flight.dump_to_stderr("cross-validation mismatch");
        std::process::exit(1);
    }
    if !audit_ok {
        eprintln!("audit FAILED on the live trace");
        flight.dump_to_stderr("audit failure");
        std::process::exit(1);
    }
}

/// `rips stats`: run one cell on either backend with the metrics
/// registry installed and emit the resulting OpenMetrics text (stdout
/// by default, `--out` for a file). The simulator backend fills the
/// event/task/message counters (its virtual clock leaves the ns
/// histograms empty); the live backend additionally fills the
/// per-dispatch timing histograms via the wall cycle clock.
fn cmd_stats() {
    let mut positionals = Vec::new();
    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        if a.starts_with("--") {
            args.next(); // every stats flag takes a value
        } else {
            positionals.push(a);
        }
    }
    let mut pos = positionals.into_iter();
    let (scheduler, app) = match (pos.next(), pos.next()) {
        (Some(s), Some(a)) => (s, a),
        (Some(a), None) => ("rips".to_string(), a),
        _ => {
            eprintln!(
                "usage: rips stats [<scheduler>] <app> [--backend sim|live] [--nodes N] \
                 [--threads N] [--seed S] [--policy P] [--out m.txt]"
            );
            std::process::exit(2);
        }
    };
    let backend = arg("--backend").unwrap_or_else(|| "sim".into());
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let policy = arg("--policy").unwrap_or_else(|| "any-lazy".into());
    let out_path = arg("--out").unwrap_or_else(|| "-".into());

    eprintln!("building workload '{app}' ...");
    let (workload, table) = build_app_live(&app);
    let workload = Arc::new(workload);

    let metrics = match backend.as_str() {
        "sim" => {
            let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(32);
            let (reg, name) = resolve_scheduler(&scheduler, &policy);
            let spec = paper_spec(&workload, nodes, seed);
            eprintln!("sim run: {name} on {nodes} nodes (seed {seed}) ...");
            let metrics = MetricsRegistry::new(nodes);
            let run = with_metrics(&metrics, || reg.run(&name, &spec));
            run.outcome
                .verify_complete(&workload)
                .expect("scheduler lost tasks");
            metrics
        }
        "live" => {
            let threads: usize = arg("--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
            let table = Arc::new(table);
            let (_, name) = resolve_scheduler(&scheduler, &policy);
            eprintln!("live run: {name} on {threads} threads (seed {seed}) ...");
            let clock: Arc<WallClock> = Arc::new(WallClock::new());
            let metrics = MetricsRegistry::new(threads);
            let out =
                with_metrics_clocked(&metrics, Arc::clone(&clock) as Arc<dyn CycleClock>, || {
                    let mut opts = live_opts(&table, GrainMode::Compute, 1.0);
                    opts.clock = Some(Arc::clone(&clock) as Arc<dyn Clock>);
                    if name == "RIPS" {
                        let (local, global) = match policy.as_str() {
                            "any-lazy" => (LocalPolicy::Lazy, GlobalPolicy::Any),
                            "any-eager" => (LocalPolicy::Eager, GlobalPolicy::Any),
                            "all-lazy" => (LocalPolicy::Lazy, GlobalPolicy::All),
                            _ => (LocalPolicy::Eager, GlobalPolicy::All),
                        };
                        let cfg = RipsConfig {
                            local,
                            global,
                            ..RipsConfig::default()
                        };
                        live_run_rips(&workload, threads, cfg, seed, opts)
                    } else {
                        live_run(&name, &workload, threads, 0.4, seed, opts)
                    }
                });
            let truth = table.static_totals();
            if out.solutions != truth.solutions || out.checksum != truth.checksum {
                eprintln!(
                    "cross-validation FAILED: expected {} solutions / {:#018x}",
                    truth.solutions, truth.checksum
                );
                std::process::exit(1);
            }
            metrics
        }
        other => {
            eprintln!("unknown --backend '{other}' (sim|live)");
            std::process::exit(2);
        }
    };
    write_metrics(&metrics, &out_path);
}

/// Shared front half of `trace` and `report`: parse the positional
/// `<scheduler> <app>` pair, run the cell under a [`TraceBuffer`] sink,
/// and hand back the buffer plus the run's end time.
fn traced_run(cmd: &str) -> (String, TraceBuffer, u64) {
    let mut pos = std::env::args()
        .skip(2)
        .take_while(|a| !a.starts_with("--"));
    let (Some(scheduler), Some(app)) = (pos.next(), pos.next()) else {
        eprintln!("usage: rips {cmd} <scheduler> <app> [--nodes N] [--seed S] [--policy P] ...");
        std::process::exit(2);
    };
    let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(32);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let policy = arg("--policy").unwrap_or_else(|| "any-lazy".into());

    eprintln!("building workload '{app}' ...");
    let workload = Arc::new(build_app(&app));
    let (reg, name) = resolve_scheduler(&scheduler, &policy);
    let spec = paper_spec(&workload, nodes, seed);

    eprintln!("tracing {name} on {nodes} nodes (seed {seed}) ...");
    let (buf, run) = rips_repro::trace::with_sink(TraceBuffer::new(), || reg.run(&name, &spec));
    run.outcome
        .verify_complete(&workload)
        .expect("scheduler lost tasks");
    let label = format!("{name} · {app} · {nodes} nodes · seed {seed}");
    (label, buf, run.outcome.stats.end_time)
}

fn cmd_trace() {
    let out_path = arg("--out").unwrap_or_else(|| "trace.json".into());
    let (label, buf, end_time) = traced_run("trace");

    if arg_flag("--check") {
        match validate(&buf) {
            Ok(check) => eprintln!(
                "trace well-formed: {} phase spans, {} stage spans, {} task execs, {} open at halt",
                check.closed_phases, check.closed_stages, check.task_execs, check.open_spans
            ),
            Err(e) => {
                eprintln!("malformed trace: {e}");
                std::process::exit(1);
            }
        }
    }

    let json = buf.chrome_json(&label, end_time);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {out_path}: {} events, {} bytes — open at https://ui.perfetto.dev",
        buf.records.len(),
        json.len()
    );
}

fn cmd_report() {
    let (label, buf, end_time) = traced_run("report");
    let mut report = buf.report(end_time);
    if arg_flag("--jsonl") {
        print!("{}", report.to_jsonl());
    } else {
        println!("{label}\n");
        print!("{}", report.render());
    }
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Runs one scheduler under the invariant [`Auditor`] and prints its
/// report; returns whether every audited invariant held. RIPS-H runs
/// get the tiling-aware auditor (per-tile Theorem 1, Lemma 1 as a
/// lower bound) built from the same decomposition the planner uses.
fn audit_one(reg: &SchedulerRegistry, name: &str, spec: &RunSpec, nodes: usize) -> bool {
    let auditor = if name == "RIPS-H" {
        let mesh = rips_repro::topology::Mesh2D::near_square(nodes);
        Auditor::with_tiles(nodes, rips_repro::sched::TileGrid::new(&mesh).assignment())
    } else {
        Auditor::new(nodes)
    };
    let (auditor, run) = rips_repro::trace::with_sink(auditor, || reg.run(name, spec));
    let report = auditor.finish();
    println!("── {name} · {} nodes · seed {} ──", spec.nodes, spec.seed);
    print!("{}", report.render_human());
    println!(
        "run              T = {:.3} s, {} non-local",
        run.outcome.exec_time_s(),
        run.outcome.nonlocal
    );
    report.is_ok()
}

fn cmd_audit() {
    let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(32);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let policy = arg("--policy").unwrap_or_else(|| "any-lazy".into());

    let (schedulers, app) = if arg_flag("--all") {
        (None, arg("--app").unwrap_or_else(|| "queens9".into()))
    } else {
        let mut pos = std::env::args()
            .skip(2)
            .take_while(|a| !a.starts_with("--"));
        let (Some(scheduler), Some(app)) = (pos.next(), pos.next()) else {
            eprintln!("usage: rips audit <scheduler> <app> [--nodes N] [--seed S]");
            eprintln!("       rips audit --all [--app queens9] [--nodes N] [--seed S]");
            std::process::exit(2);
        };
        (Some(scheduler), app)
    };

    eprintln!("building workload '{app}' ...");
    let workload = Arc::new(build_app(&app));
    let spec = paper_spec(&workload, nodes, seed);
    let mut all_ok = true;
    match schedulers {
        Some(scheduler) => {
            let (reg, name) = resolve_scheduler(&scheduler, &policy);
            all_ok &= audit_one(&reg, &name, &spec, nodes);
        }
        None => {
            let (reg, _) = resolve_scheduler("rips", &policy);
            for name in reg.names().to_vec() {
                all_ok &= audit_one(&reg, name, &spec, nodes);
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}

fn cmd_lint() {
    let root = arg("--root").unwrap_or_else(|| ".".into());
    let format = arg("--format").unwrap_or_else(|| "human".into());
    let report = match rips_repro::audit::lint_workspace(std::path::Path::new(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot walk {root}: {e}");
            std::process::exit(2);
        }
    };
    let rendered = match format.as_str() {
        "json" => report.render_json(),
        "human" => report.render_human(),
        other => {
            eprintln!("unknown --format '{other}' (human|json)");
            std::process::exit(2);
        }
    };
    match arg("--out") {
        Some(path) => {
            std::fs::write(&path, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "wrote {path}: {} finding(s) in {} file(s), {} suppressed",
                report.findings.len(),
                report.files_checked,
                report.suppressed
            );
        }
        None => print!("{rendered}"),
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}

/// `rips verify` — recompile the workspace with `--cfg rips_verify`
/// (swapping the `rips_verify::sync` seam from std re-exports to the
/// instrumented cells) and run the bounded model checker's test suites:
/// the checker's own litmus selftests plus the `verify_model` modules
/// embedded in `rips-live` (SPSC ring, transport wakeup/halt, watchdog)
/// and `rips-runtime` (RCU cell, Oracle barrier counter).
///
/// Flags map onto the `RIPS_VERIFY_*` environment knobs that
/// `Checker::from_env` reads, so CI and local runs can trade coverage
/// for wall clock without editing any test.
fn cmd_verify() {
    let mut cargo =
        std::process::Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()));
    cargo.args(["test", "-q"]);
    for pkg in ["rips-verify", "rips-live", "rips-runtime"] {
        cargo.args(["-p", pkg]);
    }
    cargo.arg("--lib");
    if let Some(filter) = arg("--filter") {
        cargo.arg(filter);
    }

    // Merge the cfg into whatever RUSTFLAGS the caller already has so
    // `rips verify` composes with sanitizer wrappers and custom flags.
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("--cfg rips_verify") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg rips_verify");
    }
    cargo.env("RUSTFLAGS", &rustflags);
    // Instrumented builds land in their own target dir so they don't
    // evict the normal build's cache (the cfg changes every crate).
    if std::env::var_os("CARGO_TARGET_DIR").is_none() {
        cargo.env("CARGO_TARGET_DIR", "target/verify");
    }

    for (flag, knob) in [
        ("--bound", "RIPS_VERIFY_BOUND"),
        ("--max-iters", "RIPS_VERIFY_MAX_ITERS"),
        ("--mode", "RIPS_VERIFY_MODE"),
        ("--seed", "RIPS_VERIFY_SEED"),
        ("--random-iters", "RIPS_VERIFY_RANDOM_ITERS"),
        ("--out", "RIPS_VERIFY_OUT"),
    ] {
        if let Some(v) = arg(flag) {
            cargo.env(knob, v);
        }
    }
    if let Some(dir) = arg("--out").or_else(|| std::env::var("RIPS_VERIFY_OUT").ok()) {
        // Pre-create the replay directory so CI's artifact-upload step
        // always has a path to point at, even on a clean run.
        let _ = std::fs::create_dir_all(&dir);
    }

    eprintln!("rips verify: {cargo:?}");
    let status = cargo.status().unwrap_or_else(|e| {
        eprintln!("cannot spawn cargo: {e}");
        std::process::exit(2);
    });
    if !status.success() {
        eprintln!(
            "rips verify: model checking FAILED — replay schedules (if any) are under \
             the RIPS_VERIFY_OUT directory; re-run a single schedule with the printed \
             RIPS_VERIFY_* knobs to reproduce deterministically"
        );
        std::process::exit(status.code().unwrap_or(1));
    }
    eprintln!("rips verify: all model suites clean");
}

fn cmd_plan() {
    let rows: usize = arg("--rows").and_then(|v| v.parse().ok()).unwrap_or(4);
    let cols: usize = arg("--cols").and_then(|v| v.parse().ok()).unwrap_or(4);
    let mesh = Mesh2D::new(rows, cols);
    let loads: Vec<i64> = match arg("--loads") {
        Some(s) => s
            .split(',')
            .map(|x| x.trim().parse().expect("loads must be integers"))
            .collect(),
        None => {
            eprintln!("--loads w0,w1,... required ({} values)", mesh.len());
            std::process::exit(2);
        }
    };
    let (plan, trace) = mwa(&mesh, &loads);
    println!(
        "mesh {rows}x{cols}, w_avg = {}, remainder = {}",
        trace.wavg, trace.remainder
    );
    println!("final loads: {:?}", plan.apply(&loads));
    println!(
        "moved {} tasks (minimum {}), edge cost {}",
        plan.nonlocal_tasks(&loads),
        min_nonlocal_tasks(&loads),
        plan.edge_cost()
    );
    for mv in &plan.moves {
        println!("  {} -> {}: {}", mv.from, mv.to, mv.count);
    }
}

/// Resolves a case-insensitive scheduler name against the canonical
/// roster (serve runs use the stock registry; `--policy` tuning is a
/// batch-run concern).
fn resolve_roster_name(scheduler: &str) -> String {
    for n in rips_repro::bench::registry().names() {
        if n.eq_ignore_ascii_case(scheduler) {
            return n.to_string();
        }
    }
    eprintln!(
        "unknown scheduler '{scheduler}'; roster: {:?}",
        rips_repro::bench::registry().names()
    );
    std::process::exit(2);
}

/// Builds the serve backend named by `--backend` (sim: `--nodes`
/// simulated processors; live: `--threads` OS threads running real
/// grains).
fn serve_backend(kind: &str) -> Box<dyn rips_repro::serve::JobBackend> {
    use rips_repro::serve::{DesimBackend, LiveBackend};
    match kind {
        "sim" => {
            let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(8);
            Box::new(DesimBackend::new(nodes))
        }
        "live" => {
            let threads: usize = arg("--threads").and_then(|v| v.parse().ok()).unwrap_or(2);
            Box::new(LiveBackend::new(threads))
        }
        other => {
            eprintln!("unknown backend '{other}' (sim|live)");
            std::process::exit(2);
        }
    }
}

fn cmd_serve() {
    use rips_repro::audit::ServeAuditor;
    use rips_repro::serve::{
        run_serve, AdmissionConfig, ArrivalProcess, Catalog, ServeConfig, TrafficConfig,
    };

    let scheduler = resolve_roster_name(&arg("--scheduler").unwrap_or_else(|| "rips".into()));
    let backend_kind = arg("--backend").unwrap_or_else(|| "sim".into());
    let tenants: u32 = arg("--tenants").and_then(|v| v.parse().ok()).unwrap_or(4);
    let jobs: u32 = arg("--jobs").and_then(|v| v.parse().ok()).unwrap_or(8);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    // `--rate` is the aggregate offered rate (jobs/s across all
    // tenants); `--mean-interarrival-us` sets the per-tenant gap
    // directly and wins when both are given.
    let mean_interarrival_us: u64 = arg("--mean-interarrival-us")
        .and_then(|v| v.parse().ok())
        .or_else(|| {
            arg("--rate")
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|r| *r > 0.0)
                .map(|r| (tenants as f64 * 1e6 / r) as u64)
        })
        .unwrap_or(50_000)
        .max(1);
    let process = match arg("--process") {
        None => ArrivalProcess::Poisson,
        Some(p) => ArrivalProcess::parse(&p).unwrap_or_else(|| {
            eprintln!("unknown process '{p}' (poisson|bursty[:N])");
            std::process::exit(2);
        }),
    };
    let cfg = ServeConfig {
        scheduler,
        traffic: TrafficConfig {
            tenants,
            jobs_per_tenant: jobs,
            mean_interarrival_us,
            process,
            seed,
        },
        admission: AdmissionConfig {
            max_pending: arg("--max-pending")
                .and_then(|v| v.parse().ok())
                .unwrap_or(64),
            tenant_quota: arg("--quota").and_then(|v| v.parse().ok()).unwrap_or(16),
        },
        quantum: arg("--quantum").and_then(|v| v.parse().ok()).unwrap_or(64),
        service_seed: seed,
    };
    let catalog = if arg_flag("--tiny") {
        Catalog::tiny()
    } else {
        Catalog::standard()
    };
    let mut backend = serve_backend(&backend_kind);
    let nodes = backend.nodes();
    eprintln!(
        "serving {} tenants x {} jobs ({}, mean gap {} µs) on {} ...",
        tenants,
        jobs,
        process.label(),
        mean_interarrival_us,
        backend.name(),
    );

    let metrics = MetricsRegistry::new(1);
    let (audit, rep) = with_metrics(&metrics, || {
        if arg_flag("--audit") {
            let (auditor, rep) = rips_repro::trace::with_sink(ServeAuditor::new(nodes), || {
                run_serve(&cfg, &catalog, backend.as_mut())
            });
            (Some(auditor.finish()), rep)
        } else {
            (None, run_serve(&cfg, &catalog, backend.as_mut()))
        }
    });

    if arg_flag("--json") {
        println!("{}", rep.to_json());
    } else {
        print!("{}", rep.render_human());
    }
    if let Some(path) = arg("--out") {
        std::fs::write(&path, rep.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    if let Some(path) = arg("--metrics-out") {
        write_metrics(&metrics, &path);
    }
    if let Some(report) = audit {
        print!("{}", report.render_human());
        if !report.is_ok() {
            eprintln!("SERVE AUDIT FAILED");
            std::process::exit(1);
        }
    }
}

fn cmd_bench_serve() {
    use rips_repro::serve::sweep::{sweep_one, SweepConfig};
    use rips_repro::serve::{Catalog, DesimBackend, LiveBackend};

    let schedulers: Vec<String> = arg("--schedulers")
        .unwrap_or_else(|| "rips,rips-h,rid".into())
        .split(',')
        .map(resolve_roster_name)
        .collect();
    let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(8);
    let threads: usize = arg("--threads").and_then(|v| v.parse().ok()).unwrap_or(2);
    let cfg = SweepConfig {
        load_factors: arg("--loads")
            .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
            .unwrap_or_else(|| vec![0.3, 1.0, 2.5]),
        tenants: arg("--tenants").and_then(|v| v.parse().ok()).unwrap_or(4),
        jobs_per_tenant: arg("--jobs").and_then(|v| v.parse().ok()).unwrap_or(8),
        seed: arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1),
        seed_variants: 1,
        ..SweepConfig::default()
    };
    let catalog = Catalog::tiny();
    let mut all_ok = true;
    for sched in &schedulers {
        for backend_kind in ["sim", "live"] {
            let series = match backend_kind {
                "sim" => sweep_one(&cfg, sched, &catalog, &mut DesimBackend::new(nodes)),
                _ => sweep_one(&cfg, sched, &catalog, &mut LiveBackend::new(threads)),
            };
            let knee = series
                .knee_load
                .map(|k| format!("{k:.2}"))
                .unwrap_or_else(|| "none".into());
            println!(
                "── {} · {} · S̄ {} µs · audited {} · spread {} · knee {} ──",
                series.scheduler,
                series.backend,
                series.mean_service_us,
                series.audited_ok,
                series.max_spread,
                knee,
            );
            for p in &series.points {
                println!(
                    "  load {:.2}: offered {:>8.1} jobs/s, achieved {:>8.1}, p50 {} µs, \
                     p99 {} µs, shed {:.1}%",
                    p.load,
                    p.offered_jobs_per_sec,
                    p.report.jobs_per_sec,
                    p.report.latency.p50_us,
                    p.report.latency.p99_us,
                    p.report.shed_rate * 100.0,
                );
                all_ok &= p.serve_audit_ok;
            }
            all_ok &= series.audited_ok;
        }
    }
    if !all_ok {
        eprintln!("BENCH-SERVE AUDIT FAILED");
        std::process::exit(1);
    }
    println!("all series audited clean (per-job conservation + Theorem 1 spread)");
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("run") => cmd_run(),
        Some("live") => cmd_live(),
        Some("stats") => cmd_stats(),
        Some("trace") => cmd_trace(),
        Some("report") => cmd_report(),
        Some("audit") => cmd_audit(),
        Some("serve") => cmd_serve(),
        Some("bench-serve") => cmd_bench_serve(),
        Some("plan") => cmd_plan(),
        Some("lint") => cmd_lint(),
        Some("verify") => cmd_verify(),
        Some("apps") => {
            for a in APPS {
                println!("{a}");
            }
        }
        Some("schedulers") => {
            for s in rips_repro::bench::registry().names() {
                println!("{}", s.to_lowercase());
            }
        }
        _ => {
            eprintln!(
                "usage: rips <run|live|stats|trace|report|audit|serve|bench-serve|plan|lint|\
                 verify|apps|schedulers> [flags]"
            );
            eprintln!(
                "  run    --app queens13 --scheduler rips|random|gradient|rid|sid --nodes 32 \
                 [--metrics-out m.txt]"
            );
            eprintln!(
                "  live   [<scheduler>] <app> [--threads N] [--mode compute|timed] \
                 [--transport ring|mpsc] [--audit] [--trace-out f] [--metrics-out m.txt]"
            );
            eprintln!(
                "  stats  [<scheduler>] <app> [--backend sim|live] [--nodes N] [--threads N] \
                 [--out m.txt]"
            );
            eprintln!(
                "  trace  <scheduler> <app> [--nodes N] [--seed S] [--out trace.json] [--check]"
            );
            eprintln!("  report <scheduler> <app> [--nodes N] [--seed S] [--jsonl]");
            eprintln!("  audit  <scheduler> <app> | --all  [--nodes N] [--seed S]");
            eprintln!(
                "  serve  [--backend sim|live] [--scheduler rips] [--tenants N] [--jobs N] \
                 [--rate jobs/s] [--process poisson|bursty[:N]] [--audit] [--json|--out f] \
                 [--metrics-out m.txt]"
            );
            eprintln!(
                "  bench-serve [--schedulers rips,rips-h,rid] [--loads 0.3,1.0,2.5] \
                 [--nodes N] [--threads N]"
            );
            eprintln!("  plan   --rows 8 --cols 4 --loads 25,0,3,...");
            eprintln!("  lint   [--root .] [--format human|json] [--out report.json]");
            eprintln!(
                "  verify [--bound N] [--mode dfs|random] [--seed S] [--max-iters N] \
                 [--random-iters N] [--out replay-dir] [--filter test-name]"
            );
            std::process::exit(2);
        }
    }
}
