//! `rips` — command-line driver for the reproduction.
//!
//! ```text
//! rips run   --app queens13 --scheduler rips --nodes 32 [--policy any-lazy] [--seed 1]
//! rips plan  --rows 8 --cols 4 --loads 25,0,3,...   # one-shot MWA on a load vector
//! rips apps                                         # list available workloads
//! ```

use std::sync::Arc;

use rips_repro::bench::{registry_with, RegistryTuning};
use rips_repro::core::{GlobalPolicy, LocalPolicy, RipsConfig};
use rips_repro::desim::LatencyModel;
use rips_repro::runtime::{Costs, RunSpec};
use rips_repro::sched::{min_nonlocal_tasks, mwa};
use rips_repro::taskgraph::Workload;
use rips_repro::topology::{Mesh2D, Topology};

fn arg(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

const APPS: &[&str] = &[
    "queens11", "queens12", "queens13", "queens14", "queens15", "ida1", "ida2", "ida3", "gromos8",
    "gromos12", "gromos16",
];

fn build_app(name: &str) -> Workload {
    use rips_repro::apps::{gromos, nqueens, puzzle, GromosConfig, NQueensConfig, PuzzleConfig};
    match name {
        "queens11" => nqueens(NQueensConfig::paper(11)),
        "queens12" => nqueens(NQueensConfig::paper(12)),
        "queens13" => nqueens(NQueensConfig::paper(13)),
        "queens14" => nqueens(NQueensConfig::paper(14)),
        "queens15" => nqueens(NQueensConfig::paper(15)),
        "ida1" => puzzle(PuzzleConfig::paper(1)),
        "ida2" => puzzle(PuzzleConfig::paper(2)),
        "ida3" => puzzle(PuzzleConfig::paper(3)),
        "gromos8" => gromos(GromosConfig::paper(8.0)),
        "gromos12" => gromos(GromosConfig::paper(12.0)),
        "gromos16" => gromos(GromosConfig::paper(16.0)),
        other => {
            eprintln!("unknown app '{other}'; available: {APPS:?}");
            std::process::exit(2);
        }
    }
}

fn cmd_run() {
    let app = arg("--app").unwrap_or_else(|| "queens13".into());
    let scheduler = arg("--scheduler").unwrap_or_else(|| "rips".into());
    let nodes: usize = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(32);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let policy = arg("--policy").unwrap_or_else(|| "any-lazy".into());

    eprintln!("building workload '{app}' ...");
    let workload = Arc::new(build_app(&app));
    let stats = workload.stats();
    println!(
        "workload: {} | {} tasks | {} rounds | Ts = {:.2} s",
        workload.name,
        stats.tasks,
        workload.rounds.len(),
        stats.total_work_us as f64 / 1e6
    );

    let mesh = Mesh2D::near_square(nodes);
    println!("machine:  {} ({} nodes)", mesh.label(), nodes);

    let (local, global) = match policy.as_str() {
        "any-lazy" => (LocalPolicy::Lazy, GlobalPolicy::Any),
        "any-eager" => (LocalPolicy::Eager, GlobalPolicy::Any),
        "all-lazy" => (LocalPolicy::Lazy, GlobalPolicy::All),
        "all-eager" => (LocalPolicy::Eager, GlobalPolicy::All),
        other => {
            eprintln!("unknown policy '{other}' (any-lazy|any-eager|all-lazy|all-eager)");
            std::process::exit(2);
        }
    };
    let reg = registry_with(RegistryTuning {
        rips: RipsConfig {
            local,
            global,
            ..RipsConfig::default()
        },
        ..RegistryTuning::default()
    });
    // Case-insensitive lookup against the registry's roster.
    let Some(name) = reg
        .names()
        .iter()
        .find(|n| n.eq_ignore_ascii_case(&scheduler))
        .map(|n| n.to_string())
    else {
        eprintln!(
            "unknown scheduler '{scheduler}'; available: {}",
            reg.names().join("|").to_lowercase()
        );
        std::process::exit(2);
    };
    let spec = RunSpec {
        workload: Arc::clone(&workload),
        nodes,
        latency: LatencyModel::paragon(),
        costs: Costs::default(),
        seed,
        rid_u: 0.4,
    };
    let run = reg.run(&name, &spec);
    let outcome = run.outcome;
    let phases = outcome.system_phases;
    outcome
        .verify_complete(&workload)
        .expect("scheduler lost tasks");

    println!("\nresults ({scheduler}):");
    println!("  non-local tasks : {}", outcome.nonlocal);
    println!("  overhead Th     : {:.3} s", outcome.overhead_s());
    println!("  idle Ti         : {:.3} s", outcome.idle_s());
    println!("  exec time T     : {:.3} s", outcome.exec_time_s());
    println!(
        "  speedup         : {:.1}",
        outcome.stats.total_user_us() as f64 / outcome.stats.end_time as f64
    );
    println!("  efficiency      : {:.1}%", outcome.efficiency() * 100.0);
    if phases > 0 {
        println!("  system phases   : {phases}");
    }
}

fn cmd_plan() {
    let rows: usize = arg("--rows").and_then(|v| v.parse().ok()).unwrap_or(4);
    let cols: usize = arg("--cols").and_then(|v| v.parse().ok()).unwrap_or(4);
    let mesh = Mesh2D::new(rows, cols);
    let loads: Vec<i64> = match arg("--loads") {
        Some(s) => s
            .split(',')
            .map(|x| x.trim().parse().expect("loads must be integers"))
            .collect(),
        None => {
            eprintln!("--loads w0,w1,... required ({} values)", mesh.len());
            std::process::exit(2);
        }
    };
    let (plan, trace) = mwa(&mesh, &loads);
    println!(
        "mesh {rows}x{cols}, w_avg = {}, remainder = {}",
        trace.wavg, trace.remainder
    );
    println!("final loads: {:?}", plan.apply(&loads));
    println!(
        "moved {} tasks (minimum {}), edge cost {}",
        plan.nonlocal_tasks(&loads),
        min_nonlocal_tasks(&loads),
        plan.edge_cost()
    );
    for mv in &plan.moves {
        println!("  {} -> {}: {}", mv.from, mv.to, mv.count);
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("run") => cmd_run(),
        Some("plan") => cmd_plan(),
        Some("apps") => {
            for a in APPS {
                println!("{a}");
            }
        }
        Some("schedulers") => {
            for s in rips_repro::bench::registry().names() {
                println!("{}", s.to_lowercase());
            }
        }
        _ => {
            eprintln!("usage: rips <run|plan|apps|schedulers> [flags]");
            eprintln!("  run  --app queens13 --scheduler rips|random|gradient|rid|sid --nodes 32");
            eprintln!("  plan --rows 8 --cols 4 --loads 25,0,3,...");
            std::process::exit(2);
        }
    }
}
